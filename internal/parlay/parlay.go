package parlay

import (
	"runtime"
	"sync/atomic"

	"pargeo/internal/rng"
)

// DefaultGrain is the default minimum number of loop iterations assigned to
// one task. Chosen so that per-task scheduling overhead (~100ns for a deque
// push/pop pair) is well under 1% of task runtime for cheap loop bodies.
const DefaultGrain = 2048

// NumWorkers returns the number of parallel workers used by this package:
// the current GOMAXPROCS setting.
func NumWorkers() int { return runtime.GOMAXPROCS(0) }

// blocking computes the task decomposition for an n-iteration loop: the
// number of blocks and the (balanced) block size. A non-positive grain asks
// for the default, which additionally coarsens so that a single loop creates
// at most ~16 blocks per worker — enough slack for stealing to rebalance a
// skewed loop, without drowning a uniform one in task overhead. An explicit
// grain gives callers with expensive iterations (per-point hull BFS,
// per-query k-NN) individually stealable fine blocks, but the total is
// still capped at 64 blocks per worker: past that, extra tasks add
// scheduling overhead without adding balance (grain is a floor — "at least
// grain iterations per task" — not an exact block size).
func blocking(n, grain int) (nblocks, blockSize int) {
	if grain <= 0 {
		grain = DefaultGrain
		if g := (n + 16*NumWorkers() - 1) / (16 * NumWorkers()); g > grain {
			grain = g
		}
	}
	nblocks = (n + grain - 1) / grain
	if maxBlocks := 64 * NumWorkers(); nblocks > maxBlocks {
		nblocks = maxBlocks
	}
	blockSize = (n + nblocks - 1) / nblocks
	// Recompute so the last block is never empty (blockSize rounding).
	nblocks = (n + blockSize - 1) / blockSize
	return
}

// For runs body(i) for each i in [0, n) in parallel, with at least grain
// iterations per task. If grain <= 0, DefaultGrain is used. body must be
// safe to call concurrently for distinct i.
func For(n, grain int, body func(i int)) {
	ForBlocked(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForBlocked runs body(lo, hi) over a partition of [0, n) into contiguous
// blocks of at least grain iterations, in parallel across blocks. It is the
// workhorse loop: block form lets bodies keep per-block locals (partial
// sums, local buffers) without false sharing. Blocks are scheduler tasks,
// so an idle worker steals blocks from a loop that turned out to be skewed.
func ForBlocked(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nblocks, blockSize := blocking(n, grain)
	if nblocks <= 1 || seqMode() {
		body(0, n)
		return
	}
	defaultSched().parallelFor(nblocks, func(b int) {
		lo := b * blockSize
		hi := min(lo+blockSize, n)
		if lo < hi {
			body(lo, hi)
		}
	})
}

// Do runs the given thunks as parallel fork-join tasks and waits for all of
// them. It is the binary/n-ary join point used by divide-and-conquer
// algorithms, and it nests: a thunk may itself call Do (or any other
// primitive) and the scheduler load-balances the whole recursion tree, so
// callers need no depth limits — only a sequential cutoff below which
// forking is not worth its (small) cost.
func Do(thunks ...func()) {
	if len(thunks) == 0 {
		return
	}
	if len(thunks) == 1 || seqMode() {
		for _, t := range thunks {
			t()
		}
		return
	}
	if w := currentWorker(); w != nil {
		w.do(thunks)
		return
	}
	defaultSched().externalDo(thunks)
}

// Reduce computes merge over f(i) for i in [0, n) in parallel.
// id is the identity of merge. merge must be associative.
func Reduce[T any](n, grain int, id T, f func(i int) T, merge func(a, b T) T) T {
	if n <= 0 {
		return id
	}
	nblocks, blockSize := blocking(n, grain)
	if nblocks <= 1 || seqMode() {
		acc := id
		for i := 0; i < n; i++ {
			acc = merge(acc, f(i))
		}
		return acc
	}
	partial := make([]T, nblocks)
	defaultSched().parallelFor(nblocks, func(b int) {
		acc := id
		for i := b * blockSize; i < min((b+1)*blockSize, n); i++ {
			acc = merge(acc, f(i))
		}
		partial[b] = acc
	})
	acc := id
	for _, v := range partial {
		acc = merge(acc, v)
	}
	return acc
}

// SumInt returns the parallel sum of f(i) over [0, n).
func SumInt(n, grain int, f func(i int) int) int {
	return Reduce(n, grain, 0, f, func(a, b int) int { return a + b })
}

// Count returns the number of i in [0, n) for which pred(i) holds.
func Count(n, grain int, pred func(i int) bool) int {
	return SumInt(n, grain, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// MaxIndexFloat returns the index i in [0, n) maximizing key(i), or -1 when
// n == 0. Ties resolve to the smallest index, so the result is deterministic
// regardless of worker count (the paper's "parallel maximum-finding
// routine", used by quickhull and the pivoting SEB heuristic).
func MaxIndexFloat(n, grain int, key func(i int) float64) int {
	type im struct {
		idx int
		val float64
	}
	r := Reduce(n, grain, im{-1, 0},
		func(i int) im { return im{i, key(i)} },
		func(a, b im) im {
			if a.idx < 0 {
				return b
			}
			if b.idx < 0 {
				return a
			}
			if b.val > a.val || (b.val == a.val && b.idx < a.idx) {
				return b
			}
			return a
		})
	return r.idx
}

// MinIndexFloat returns the index minimizing key(i), or -1 when n == 0.
func MinIndexFloat(n, grain int, key func(i int) float64) int {
	return MaxIndexFloat(n, grain, func(i int) float64 { return -key(i) })
}

// ScanInts replaces in with its exclusive prefix sum and returns the total.
// Two-pass blocked scan: per-block sums, sequential scan of the (few) block
// sums, then per-block local scans — O(n) work, two parallel sweeps.
func ScanInts(in []int) int {
	n := len(in)
	if n == 0 {
		return 0
	}
	nblocks, blockSize := blocking(n, 0)
	if nblocks <= 1 || seqMode() {
		total := 0
		for i := 0; i < n; i++ {
			v := in[i]
			in[i] = total
			total += v
		}
		return total
	}
	sums := make([]int, nblocks)
	s := defaultSched()
	s.parallelFor(nblocks, func(b int) {
		acc := 0
		for i := b * blockSize; i < min((b+1)*blockSize, n); i++ {
			acc += in[i]
		}
		sums[b] = acc
	})
	total := 0
	for b := 0; b < nblocks; b++ {
		v := sums[b]
		sums[b] = total
		total += v
	}
	s.parallelFor(nblocks, func(b int) {
		acc := sums[b]
		for i := b * blockSize; i < min((b+1)*blockSize, n); i++ {
			v := in[i]
			in[i] = acc
			acc += v
		}
	})
	return total
}

// PackIndex returns, in order, all indices i in [0, n) for which keep(i) is
// true. This is the paper's "ParallelPack" (Fig. 5, line 17): flags -> scan
// -> scatter.
func PackIndex(n int, keep func(i int) bool) []int32 {
	if n == 0 {
		return nil
	}
	flags := make([]int, n)
	For(n, 0, func(i int) {
		if keep(i) {
			flags[i] = 1
		}
	})
	total := ScanInts(flags)
	out := make([]int32, total)
	For(n, 0, func(i int) {
		if keep(i) {
			out[flags[i]] = int32(i)
		}
	})
	return out
}

// Pack returns the elements of in whose keep flag is true, preserving order.
func Pack[T any](in []T, keep func(i int) bool) []T {
	n := len(in)
	if n == 0 {
		return nil
	}
	flags := make([]int, n)
	For(n, 0, func(i int) {
		if keep(i) {
			flags[i] = 1
		}
	})
	total := ScanInts(flags)
	out := make([]T, total)
	For(n, 0, func(i int) {
		if keep(i) {
			out[flags[i]] = in[i]
		}
	})
	return out
}

// Filter returns the elements of in satisfying pred, preserving order.
func Filter[T any](in []T, pred func(v T) bool) []T {
	return Pack(in, func(i int) bool { return pred(in[i]) })
}

// WriteMin atomically sets *addr = min(*addr, val) and reports whether val
// became the stored minimum. This is the priority write from Shun et al.
// used for the paper's facet reservations: concurrent writers race, the
// smallest value (highest priority) wins deterministically.
func WriteMin(addr *int64, val int64) bool {
	for {
		old := atomic.LoadInt64(addr)
		if old <= val {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, old, val) {
			return true
		}
	}
}

// WriteMax atomically sets *addr = max(*addr, val) and reports whether val
// became the stored maximum.
func WriteMax(addr *int64, val int64) bool {
	for {
		old := atomic.LoadInt64(addr)
		if old >= val {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, old, val) {
			return true
		}
	}
}

// WriteMinFloat64 atomically lowers *addr (interpreted through bits as a
// non-negative float64) to val if val is smaller. Only valid for
// non-negative values, whose IEEE-754 bit patterns order like the floats.
func WriteMinFloat64(addr *uint64, val float64) bool {
	bits := floatBits(val)
	for {
		old := atomic.LoadUint64(addr)
		if old <= bits {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, bits) {
			return true
		}
	}
}

// Shuffle randomly permutes s in place, deterministically from seed
// (Fisher–Yates; sequential — permutation generation is never a measured
// bottleneck in the reproduced experiments).
func Shuffle[T any](s []T, seed uint64) {
	r := rng.NewXoshiro256(seed)
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// RandomPermutation returns a random permutation of [0, n), deterministic
// from seed.
func RandomPermutation(n int, seed uint64) []int32 {
	p := make([]int32, n)
	For(n, 0, func(i int) { p[i] = int32(i) })
	Shuffle(p, seed)
	return p
}
