package zdtree

import (
	"sort"
	"testing"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

func box3(pts geom.Points) geom.Box { return geom.BoundingBoxAll(pts) }

func bruteKNN(coords geom.Points, gids []int32, q []float64, k int, exclude int32) []float64 {
	var ds []float64
	for i := 0; i < coords.Len(); i++ {
		if gids[i] == exclude {
			continue
		}
		ds = append(ds, geom.SqDist(q, coords.At(i)))
	}
	sort.Float64s(ds)
	if len(ds) > k {
		ds = ds[:k]
	}
	return ds
}

func distsOf(t *Tree, q []float64, ids []int32, coordOf map[int32][]float64) []float64 {
	var out []float64
	for _, id := range ids {
		out = append(out, geom.SqDist(q, coordOf[id]))
	}
	sort.Float64s(out)
	return out
}

func TestZdKNNMatchesBrute(t *testing.T) {
	pts := generators.UniformCube(2000, 3, 1)
	tr := New(3, box3(pts))
	ids := tr.Insert(pts)
	coordOf := map[int32][]float64{}
	for i, id := range ids {
		coordOf[id] = pts.At(i)
	}
	queries := pts.Slice(0, 40)
	res := tr.KNN(queries, 5, ids[:40])
	for i := range res {
		want := bruteKNN(pts, ids, queries.At(i), 5, ids[i])
		got := distsOf(tr, queries.At(i), res[i], coordOf)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d: dist %d = %g, want %g", i, j, got[j], want[j])
			}
		}
	}
}

func TestZdBatchInsertMerge(t *testing.T) {
	all := generators.UniformCube(1000, 2, 2)
	tr := New(2, box3(all))
	var ids []int32
	for b := 0; b < 10; b++ {
		ids = append(ids, tr.Insert(all.Slice(b*100, (b+1)*100))...)
	}
	if tr.Size() != 1000 {
		t.Fatalf("size %d", tr.Size())
	}
	// Codes must stay sorted after merges.
	for i := 1; i < len(tr.codes); i++ {
		if tr.codes[i] < tr.codes[i-1] {
			t.Fatalf("codes unsorted at %d", i)
		}
	}
	coordOf := map[int32][]float64{}
	for i, id := range ids {
		coordOf[id] = all.At(i)
	}
	res := tr.KNN(all.Slice(0, 20), 3, ids[:20])
	for i := range res {
		want := bruteKNN(all, ids, all.At(i), 3, ids[i])
		got := distsOf(tr, all.At(i), res[i], coordOf)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("incremental query %d mismatch", i)
			}
		}
	}
}

func TestZdDelete(t *testing.T) {
	pts := generators.UniformCube(800, 3, 3)
	tr := New(3, box3(pts))
	tr.Insert(pts)
	if got := tr.Delete(pts.Slice(0, 300)); got != 300 {
		t.Fatalf("deleted %d", got)
	}
	if tr.Size() != 500 {
		t.Fatalf("size %d", tr.Size())
	}
	// Deleted points must never be returned.
	res := tr.KNN(pts.Slice(0, 10), 4, nil)
	surviving := map[int32]bool{}
	for _, r := range res {
		for _, id := range r {
			surviving[id] = true
		}
	}
	for id := range surviving {
		if id < 300 {
			t.Fatalf("deleted id %d returned by kNN", id)
		}
	}
	// Full delete then reinsert works (exercises compaction).
	tr.Delete(pts.Slice(300, 800))
	if tr.Size() != 0 {
		t.Fatalf("size %d after full delete", tr.Size())
	}
	tr.Insert(pts.Slice(0, 50))
	if tr.Size() != 50 {
		t.Fatalf("size %d after reinsert", tr.Size())
	}
}

func TestZdDuplicateCoordinates(t *testing.T) {
	pts := geom.Points{Dim: 2, Data: []float64{1, 1, 1, 1, 2, 2, 3, 3}}
	tr := New(2, box3(pts))
	tr.Insert(pts)
	if got := tr.Delete(geom.Points{Dim: 2, Data: []float64{1, 1}}); got != 2 {
		t.Fatalf("duplicate delete removed %d, want 2", got)
	}
	if tr.Size() != 2 {
		t.Fatalf("size %d", tr.Size())
	}
}
