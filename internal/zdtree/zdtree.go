// Package zdtree provides a simplified Zd-tree — the Morton-order-based
// batch-dynamic nearest-neighbor structure of Blelloch and Dobson that
// §6.3 of the ParGeo paper compares the BDL-tree against. It exists here
// so the paper's final comparison can be regenerated from this repository
// alone.
//
// The structure keeps the points sorted by Morton code over a fixed global
// quantization box. Like the original it supports batch insertion and
// deletion and k-NN queries, and like the original its construction is
// dominated by a (fast, parallel radix) Morton sort in low dimensions:
//
//   - batch insert: Morton-code the batch, radix-sort it, and merge the
//     two sorted arrays (parallel);
//   - batch delete: locate each victim by code binary search and
//     tombstone it; compaction happens when half the array is dead;
//   - k-NN: an implicit kd-tree over the sorted array is rebuilt lazily
//     after each update (an O(n/leaf)-node pass) and queried like a
//     regular kd-tree.
//
// Simplification vs. Blelloch & Dobson: the original updates the tree
// *structure* incrementally and in parallel, while this version re-derives
// the implicit hierarchy after each batch (the array merge itself is the
// same). This preserves the comparison the paper draws — construction and
// updates dominated by highly-optimized Morton sorting in 2–3 dimensions,
// with k-NN performance comparable to a kd-tree — while staying compact.
// The paper's caveat also applies: quantization to 64/d bits per dimension
// makes the approach attractive only in low dimensions.
package zdtree

import (
	"math"
	"sort"

	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/morton"
	"pargeo/internal/parlay"
)

// Tree is a simplified Zd-tree over points in a fixed bounding box.
type Tree struct {
	dim    int
	box    geom.Box // global quantization box (fixed at New)
	codes  []uint64 // sorted Morton codes
	coords []float64
	gids   []int32
	dead   []bool
	live   int
	nextID int32
	nodes  []znode // implicit hierarchy over the array
	leaf   int
}

type znode struct {
	minC, maxC  [kdtree.MaxDim]float64
	lo, hi      int32
	left, right int32 // -1 for leaf
}

// New returns an empty tree whose Morton quantization covers box.
func New(dim int, box geom.Box) *Tree {
	return &Tree{dim: dim, box: box, leaf: 16}
}

// Size returns the number of live points.
func (t *Tree) Size() int { return t.live }

// Insert adds a batch and returns its assigned ids.
func (t *Tree) Insert(batch geom.Points) []int32 {
	m := batch.Len()
	ids := make([]int32, m)
	for i := range ids {
		ids[i] = t.nextID
		t.nextID++
	}
	// Code + sort the batch.
	bc := make([]uint64, m)
	ord := make([]int32, m)
	parlay.For(m, 512, func(i int) {
		bc[i] = morton.Encode(batch.At(i), t.box)
		ord[i] = int32(i)
	})
	parlay.SortPairs(bc, ord)
	// Merge into the existing sorted arrays.
	n := len(t.codes)
	outCodes := make([]uint64, 0, n+m)
	outCoords := make([]float64, 0, (n+m)*t.dim)
	outGids := make([]int32, 0, n+m)
	outDead := make([]bool, 0, n+m)
	i, j := 0, 0
	for i < n || j < m {
		takeOld := j >= m || (i < n && t.codes[i] <= bc[j])
		if takeOld {
			outCodes = append(outCodes, t.codes[i])
			outCoords = append(outCoords, t.coords[i*t.dim:(i+1)*t.dim]...)
			outGids = append(outGids, t.gids[i])
			outDead = append(outDead, t.dead[i])
			i++
		} else {
			src := int(ord[j])
			outCodes = append(outCodes, bc[j])
			outCoords = append(outCoords, batch.At(src)...)
			outGids = append(outGids, ids[src])
			outDead = append(outDead, false)
			j++
		}
	}
	t.codes, t.coords, t.gids, t.dead = outCodes, outCoords, outGids, outDead
	t.live += m
	t.rebuildNodes()
	return ids
}

// Delete tombstones every live point exactly matching a batch coordinate;
// returns the number removed. Compacts when half the array is dead.
func (t *Tree) Delete(batch geom.Points) int {
	removed := 0
	for bi := 0; bi < batch.Len(); bi++ {
		p := batch.At(bi)
		code := morton.Encode(p, t.box)
		// All entries with this code are contiguous.
		lo := sort.Search(len(t.codes), func(i int) bool { return t.codes[i] >= code })
		for i := lo; i < len(t.codes) && t.codes[i] == code; i++ {
			if t.dead[i] {
				continue
			}
			match := true
			for c := 0; c < t.dim; c++ {
				if t.coords[i*t.dim+c] != p[c] {
					match = false
					break
				}
			}
			if match {
				t.dead[i] = true
				removed++
			}
		}
	}
	t.live -= removed
	if t.live < len(t.codes)/2 {
		t.compact()
	}
	t.rebuildNodes()
	return removed
}

func (t *Tree) compact() {
	n := len(t.codes)
	outCodes := t.codes[:0]
	outGids := t.gids[:0]
	outCoords := t.coords[:0]
	k := 0
	for i := 0; i < n; i++ {
		if t.dead[i] {
			continue
		}
		outCodes = append(outCodes, t.codes[i])
		outGids = append(outGids, t.gids[i])
		outCoords = append(outCoords, t.coords[i*t.dim:(i+1)*t.dim]...)
		k++
	}
	t.codes, t.gids, t.coords = outCodes, outGids, outCoords
	t.dead = make([]bool, k)
}

// rebuildNodes derives the implicit kd-hierarchy over the sorted array:
// recursively halve the array (Morton order means each half is spatially
// coherent), computing bounding boxes bottom-up.
func (t *Tree) rebuildNodes() {
	t.nodes = t.nodes[:0]
	if len(t.codes) == 0 {
		return
	}
	t.buildNode(0, int32(len(t.codes)))
}

func (t *Tree) buildNode(lo, hi int32) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, znode{lo: lo, hi: hi, left: -1, right: -1})
	if int(hi-lo) <= t.leaf {
		nd := &t.nodes[id]
		t.leafBox(nd)
		return id
	}
	mid := (lo + hi) / 2
	l := t.buildNode(lo, mid)
	r := t.buildNode(mid, hi)
	nd := &t.nodes[id]
	nd.left, nd.right = l, r
	for c := 0; c < t.dim; c++ {
		nd.minC[c] = math.Min(t.nodes[l].minC[c], t.nodes[r].minC[c])
		nd.maxC[c] = math.Max(t.nodes[l].maxC[c], t.nodes[r].maxC[c])
	}
	return id
}

func (t *Tree) leafBox(nd *znode) {
	for c := 0; c < t.dim; c++ {
		nd.minC[c], nd.maxC[c] = math.Inf(1), math.Inf(-1)
	}
	for i := nd.lo; i < nd.hi; i++ {
		if t.dead[i] {
			continue
		}
		for c := 0; c < t.dim; c++ {
			v := t.coords[int(i)*t.dim+c]
			if v < nd.minC[c] {
				nd.minC[c] = v
			}
			if v > nd.maxC[c] {
				nd.maxC[c] = v
			}
		}
	}
}

// KNN returns the k nearest live points' ids for each query row,
// data-parallel over queries.
func (t *Tree) KNN(queries geom.Points, k int, exclude []int32) [][]int32 {
	n := queries.Len()
	out := make([][]int32, n)
	parlay.ForBlocked(n, 32, func(lo, hi int) {
		buf := kdtree.NewKNNBuffer(k)
		for i := lo; i < hi; i++ {
			buf.Reset()
			ex := int32(-1)
			if exclude != nil {
				ex = exclude[i]
			}
			if len(t.nodes) > 0 {
				t.knnRec(0, queries.At(i), ex, buf)
			}
			out[i] = buf.Result(nil)
		}
	})
	return out
}

func (t *Tree) knnRec(id int32, q []float64, exclude int32, buf *kdtree.KNNBuffer) {
	nd := &t.nodes[id]
	if nd.left < 0 {
		for i := nd.lo; i < nd.hi; i++ {
			if t.dead[i] || t.gids[i] == exclude {
				continue
			}
			buf.Insert(t.gids[i], geom.SqDist(q, t.coords[int(i)*t.dim:int(i+1)*t.dim]))
		}
		return
	}
	dl := t.boxSqDist(&t.nodes[nd.left], q)
	dr := t.boxSqDist(&t.nodes[nd.right], q)
	near, far, dfar := nd.left, nd.right, dr
	if dr < dl {
		near, far, dfar = nd.right, nd.left, dl
	}
	t.knnRec(near, q, exclude, buf)
	if !buf.Full() || dfar < buf.Bound() {
		t.knnRec(far, q, exclude, buf)
	}
}

func (t *Tree) boxSqDist(nd *znode, q []float64) float64 {
	s := 0.0
	for c := 0; c < t.dim; c++ {
		if v := q[c]; v < nd.minC[c] {
			d := nd.minC[c] - v
			s += d * d
		} else if v > nd.maxC[c] {
			d := v - nd.maxC[c]
			s += d * d
		}
	}
	return s
}
