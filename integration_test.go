package pargeo

// Cross-module integration tests: relations between the outputs of
// different algorithms that must hold for any correct implementation.

import (
	"math"
	"testing"

	"pargeo/internal/delaunay"
	"pargeo/internal/emst"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/graphgen"
	"pargeo/internal/hull2d"
	"pargeo/internal/hull3d"
	"pargeo/internal/seb"
)

// TestHullVerticesOnSEBBoundaryRelation: the smallest enclosing ball is
// determined by hull vertices only, so the SEB of the hull vertex subset
// equals the SEB of the whole set.
func TestSEBOfHullEqualsSEBOfAll(t *testing.T) {
	pts := generators.InSphere(20000, 2, 1)
	full := seb.Welzl(pts, 1, seb.Heuristics{MTF: true})
	hull := hull2d.DivideConquer(pts)
	sub := pts.Gather(hull)
	part := seb.Welzl(sub, 2, seb.Heuristics{MTF: true})
	if math.Abs(full.SqRadius-part.SqRadius) > 1e-9*(1+full.SqRadius) {
		t.Fatalf("SEB(hull)=%g != SEB(all)=%g", part.SqRadius, full.SqRadius)
	}
}

// TestEMSTSubsetOfDelaunay: in 2D, the EMST is a subgraph of the Delaunay
// triangulation.
func TestEMSTSubsetOfDelaunay(t *testing.T) {
	pts := generators.UniformCube(2000, 2, 2)
	mst := emst.Compute(pts)
	des := delaunay.Parallel(pts, 3).Edges()
	de := make(map[[2]int32]bool, len(des))
	for _, e := range des {
		de[[2]int32{e.U, e.V}] = true
	}
	for _, e := range mst {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if !de[[2]int32{u, v}] {
			t.Fatalf("EMST edge (%d,%d) not a Delaunay edge", u, v)
		}
	}
}

// TestEMSTSubsetOfGabriel— actually the EMST is also a subgraph of the
// Gabriel graph (EMST ⊆ RNG ⊆ Gabriel ⊆ Delaunay).
func TestEMSTSubsetOfGabriel(t *testing.T) {
	pts := generators.UniformCube(1500, 2, 4)
	mst := emst.Compute(pts)
	ga := graphgen.GabrielGraph(pts, 5)
	gset := make(map[[2]int32]bool, len(ga))
	for _, e := range ga {
		gset[[2]int32{e.U, e.V}] = true
	}
	for _, e := range mst {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if !gset[[2]int32{u, v}] {
			t.Fatalf("EMST edge (%d,%d) not a Gabriel edge", u, v)
		}
	}
}

// TestHull2DBoundaryOfDelaunay: the hull edges are exactly the Delaunay
// edges that lie on one triangle only.
func TestHull2DBoundaryOfDelaunay(t *testing.T) {
	pts := generators.InSphere(1000, 2, 6)
	hull := hull2d.MonotoneChain(pts)
	hullEdges := map[[2]int32]bool{}
	for i := range hull {
		u, v := hull[i], hull[(i+1)%len(hull)]
		if u > v {
			u, v = v, u
		}
		hullEdges[[2]int32{u, v}] = true
	}
	tris := delaunay.Parallel(pts, 7).Triangles()
	cnt := map[[2]int32]int{}
	for _, tv := range tris {
		for e := 0; e < 3; e++ {
			u, v := tv[e], tv[(e+1)%3]
			if u > v {
				u, v = v, u
			}
			cnt[[2]int32{u, v}]++
		}
	}
	boundary := map[[2]int32]bool{}
	for k, c := range cnt {
		if c == 1 {
			boundary[k] = true
		}
	}
	// The strict hull omits collinear boundary points, which the Delaunay
	// boundary keeps (splitting one hull edge into several boundary edges),
	// so boundary >= hull. Every Delaunay boundary vertex must lie on the
	// hull polygon (not strictly inside).
	if len(boundary) < len(hullEdges) {
		t.Fatalf("boundary edges %d < hull edges %d", len(boundary), len(hullEdges))
	}
	box := geom.BoundingBoxAll(pts)
	tol := 1e-9 * math.Sqrt(box.SqDiameter())
	onHull := func(v int32) bool {
		// On (or within fp-tolerance of) some hull edge, or outside it.
		p := pts.At(int(v))
		for i := range hull {
			a := pts.At(int(hull[i]))
			b := pts.At(int(hull[(i+1)%len(hull)]))
			cross := geom.Cross2D(a, b, p)
			edgeLen := math.Sqrt(geom.SqDist(a, b))
			if cross <= tol*edgeLen { // signed distance to the edge line
				return true
			}
		}
		return false
	}
	for k := range boundary {
		if !onHull(k[0]) || !onHull(k[1]) {
			t.Fatalf("Delaunay boundary edge %v has an interior endpoint", k)
		}
	}
	// Conversely every strict hull edge is covered: both endpoints appear
	// among boundary-edge endpoints.
	bverts := map[int32]bool{}
	for k := range boundary {
		bverts[k[0]] = true
		bverts[k[1]] = true
	}
	for _, v := range hull {
		if !bverts[v] {
			t.Fatalf("hull vertex %d missing from Delaunay boundary", v)
		}
	}
}

// TestHull3DVerticesExtremeDirections: for random directions, the extreme
// point along the direction must be a hull vertex.
func TestHull3DVerticesExtremeDirections(t *testing.T) {
	pts := generators.Statue(5000, 8)
	facets := hull3d.DivideConquer(pts)
	vs := map[int32]bool{}
	for _, v := range hull3d.Vertices(facets) {
		vs[v] = true
	}
	for trial := 0; trial < 50; trial++ {
		d := []float64{
			math.Sin(float64(trial)), math.Cos(float64(trial) * 1.3), math.Sin(float64(trial)*0.7 + 1),
		}
		best, bestDot := int32(-1), math.Inf(-1)
		for i := 0; i < pts.Len(); i++ {
			p := pts.At(i)
			dot := p[0]*d[0] + p[1]*d[1] + p[2]*d[2]
			if dot > bestDot {
				best, bestDot = int32(i), dot
			}
		}
		if !vs[best] {
			// The extreme point could tie with a hull vertex at equal dot
			// product; verify it lies on the hull surface instead.
			onHull := false
			for _, f := range facets {
				a, b, c := pts.At(int(f[0])), pts.At(int(f[1])), pts.At(int(f[2]))
				if math.Abs(geom.PlaneSide3(a, b, c, pts.At(int(best)))) < 1e-6 {
					onHull = true
					break
				}
			}
			if !onHull {
				t.Fatalf("extreme point %d along direction %d is not a hull vertex", best, trial)
			}
		}
	}
}

// TestSpannerContainsEMSTWeight: a t-spanner's MST approximates the EMST
// weight within factor t.
func TestSpannerWeightBound(t *testing.T) {
	pts := generators.UniformCube(500, 2, 9)
	mstW := emst.TotalWeight(emst.Compute(pts))
	s := 6.0
	edges := graphgen.Spanner(pts, s)
	// Kruskal over spanner edges.
	type we struct {
		u, v int32
		w    float64
	}
	var ses []we
	for _, e := range edges {
		ses = append(ses, we{e.U, e.V, math.Sqrt(pts.SqDist(int(e.U), int(e.V)))})
	}
	for i := 1; i < len(ses); i++ {
		for j := i; j > 0 && ses[j].w < ses[j-1].w; j-- {
			ses[j], ses[j-1] = ses[j-1], ses[j]
		}
	}
	parent := make([]int32, pts.Len())
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	spW := 0.0
	for _, e := range ses {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			spW += e.w
		}
	}
	tBound := (s + 4) / (s - 4)
	if spW < mstW*(1-1e-9) {
		t.Fatalf("spanner MST %g below EMST %g (impossible)", spW, mstW)
	}
	if spW > mstW*tBound {
		t.Fatalf("spanner MST %g exceeds t x EMST = %g", spW, mstW*tBound)
	}
}

// TestGeneratorsFeedAllModules smoke-tests every generator through a
// pipeline (hull + SEB + tree) to catch shape assumptions.
func TestGeneratorsFeedAllModules(t *testing.T) {
	gens := []struct {
		name string
		pts  geom.Points
	}{
		{"uniform", generators.UniformCube(2000, 3, 1)},
		{"insphere", generators.InSphere(2000, 3, 2)},
		{"onsphere", generators.OnSphere(2000, 3, 3)},
		{"oncube", generators.OnCube(2000, 3, 4)},
		{"seedspreader", generators.SeedSpreader(2000, 3, 5)},
		{"statue", generators.Statue(2000, 6)},
		{"dragon", generators.Dragon(2000, 7)},
	}
	for _, g := range gens {
		facets := hull3d.DivideConquer(g.pts)
		if len(facets) < 4 {
			t.Fatalf("%s: degenerate hull", g.name)
		}
		b := seb.Sampling(g.pts, 1)
		for i := 0; i < g.pts.Len(); i++ {
			if b.SqDistTo(g.pts.At(i)) > b.SqRadius*(1+1e-9) {
				t.Fatalf("%s: SEB excludes point %d", g.name, i)
			}
		}
	}
}
