// Command pargeo-hull computes the convex hull and smallest enclosing ball
// of a point file (CSV or the ptio binary format), demonstrating the
// library on external data:
//
//	pargeo-gen -dist onsphere -n 1000000 -dim 3 -o pts.csv
//	pargeo-hull -in pts.csv -algo dnc -o hull.csv
//
// For 2D inputs it writes the hull vertices in counterclockwise order; for
// 3D inputs it writes one facet (three vertex indices) per line.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"pargeo/internal/geom"
	"pargeo/internal/hull2d"
	"pargeo/internal/hull3d"
	"pargeo/internal/ptio"
	"pargeo/internal/seb"
)

func main() {
	in := flag.String("in", "", "input points (CSV or PGEO binary; required)")
	out := flag.String("o", "", "output file (default stdout)")
	algo := flag.String("algo", "dnc", "hull algorithm: seq|quickhull|randinc|pseudo|dnc")
	ball := flag.Bool("ball", true, "also report the smallest enclosing ball")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "pargeo-hull: -in is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	var pts geom.Points
	magic := make([]byte, 4)
	if n, _ := f.Read(magic); n == 4 && string(magic) == "PGEO" {
		f.Seek(0, 0)
		pts, err = ptio.ReadBinary(f)
	} else {
		f.Seek(0, 0)
		pts, err = ptio.ReadCSV(f)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "read %d points in %dD\n", pts.Len(), pts.Dim)

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer w.Close()
	}
	start := time.Now()
	switch pts.Dim {
	case 2:
		var hull []int32
		switch *algo {
		case "seq":
			hull = hull2d.SequentialQuickhull(pts)
		case "quickhull":
			hull = hull2d.Quickhull(pts)
		case "randinc":
			hull = hull2d.RandInc(pts, 1)
		default:
			hull = hull2d.DivideConquer(pts)
		}
		fmt.Fprintf(os.Stderr, "hull: %d vertices in %.1fms\n",
			len(hull), time.Since(start).Seconds()*1000)
		for _, v := range hull {
			p := pts.At(int(v))
			fmt.Fprintf(w, "%d,%g,%g\n", v, p[0], p[1])
		}
	case 3:
		var facets [][3]int32
		switch *algo {
		case "seq":
			facets = hull3d.SequentialQuickhull(pts)
		case "quickhull":
			facets = hull3d.Quickhull(pts)
		case "randinc":
			facets = hull3d.RandInc(pts, 1)
		case "pseudo":
			facets = hull3d.Pseudo(pts)
		default:
			facets = hull3d.DivideConquer(pts)
		}
		fmt.Fprintf(os.Stderr, "hull: %d facets, %d vertices in %.1fms\n",
			len(facets), len(hull3d.Vertices(facets)), time.Since(start).Seconds()*1000)
		for _, fc := range facets {
			fmt.Fprintf(w, "%d,%d,%d\n", fc[0], fc[1], fc[2])
		}
	default:
		fatal(fmt.Errorf("hull output supports 2D and 3D inputs; got %dD", pts.Dim))
	}
	if *ball {
		start = time.Now()
		b := seb.Sampling(pts, 1)
		fmt.Fprintf(os.Stderr, "smallest enclosing ball: center %v radius %.6g (%.1fms)\n",
			b.Center[:pts.Dim], math.Sqrt(b.SqRadius), time.Since(start).Seconds()*1000)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pargeo-hull:", err)
	os.Exit(1)
}
