// Command pargeo-doclint enforces doc coverage on the library's public
// surface: every exported symbol of the packages it is pointed at — the
// facade package pargeo and the client package, in CI — must carry a doc
// comment, and so must the packages themselves. The public API is where
// a missing comment costs users (godoc renders a bare name), and keeping
// the check in CI means the documentation pass that produced
// docs/ARCHITECTURE.md cannot silently rot as the surface grows.
//
// Usage:
//
//	pargeo-doclint [package-dir ...]    # defaults to: . client
//
// Exit status: 0 when every exported symbol is documented, 1 otherwise
// (each offender listed as dir: Kind Name), 2 on usage/parse errors.
// Test files and main packages are ignored; internal packages are the
// implementation's to document at whatever density fits (their doc.go
// files are linted implicitly when pointed at, but CI deliberately lints
// only the exported, importable surface).
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{".", "client"}
	}
	bad := 0
	for _, dir := range dirs {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pargeo-doclint: %v\n", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "pargeo-doclint: %d exported symbols lack doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory and reports every exported symbol
// without a doc comment. Returns the offender count.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	report := func(kind, name string) {
		fmt.Printf("%s: %s %s undocumented\n", dir, kind, name)
		bad++
	}
	for _, pkg := range pkgs {
		if pkg.Name == "main" || strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		// doc.New prunes the AST into the godoc view: grouped
		// const/var blocks share their block comment, methods hang off
		// their receiver type, and unexported symbols are dropped —
		// exactly the surface the lint is about.
		d := doc.New(pkg, dir, 0)
		if strings.TrimSpace(d.Doc) == "" {
			report("package", d.Name)
		}
		for _, v := range append(append([]*doc.Value{}, d.Consts...), d.Vars...) {
			checkValue(report, v, "")
		}
		for _, f := range d.Funcs {
			checkFunc(report, f)
		}
		for _, t := range d.Types {
			if ast.IsExported(t.Name) && strings.TrimSpace(t.Doc) == "" {
				report("type", t.Name)
			}
			for _, v := range append(append([]*doc.Value{}, t.Consts...), t.Vars...) {
				checkValue(report, v, t.Name+": ")
			}
			for _, f := range append(append([]*doc.Func{}, t.Funcs...), t.Methods...) {
				checkFunc(report, f)
			}
		}
	}
	return bad, nil
}

// checkValue flags a const/var declaration group whose every exported
// name would render bare: one block comment documents the whole group,
// so only a group with neither block doc nor any relevant per-spec line
// comments is an offender.
func checkValue(report func(kind, name string), v *doc.Value, prefix string) {
	if strings.TrimSpace(v.Doc) != "" {
		return
	}
	var exported []string
	for _, name := range v.Names {
		if ast.IsExported(name) {
			exported = append(exported, name)
		}
	}
	if len(exported) == 0 {
		return
	}
	// A group may document each spec individually instead of the block.
	for _, spec := range v.Decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || (vs.Doc == nil && vs.Comment == nil) {
			continue
		}
		for _, n := range vs.Names {
			if ast.IsExported(n.Name) {
				return
			}
		}
	}
	report("const/var group", prefix+strings.Join(exported, ", "))
}

func checkFunc(report func(kind, name string), f *doc.Func) {
	if !ast.IsExported(f.Name) || strings.TrimSpace(f.Doc) != "" {
		return
	}
	name := f.Name
	if f.Recv != "" {
		name = "(" + f.Recv + ")." + name
	}
	report("func", name)
}
