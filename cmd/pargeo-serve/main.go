// Command pargeo-serve is the engine daemon: it opens (or recovers) a
// durable sharded engine and serves it over TCP with the wire protocol
// (internal/wire), answered by the client package. SIGTERM/SIGINT shut
// it down gracefully — the accept loop stops, in-flight requests drain
// to completion with their responses flushed, and only then does the
// engine close (flushing the WAL tail), so every acknowledged update is
// covered by the durability contract across a restart.
//
// -max-reads/-max-writes/-max-control bound the in-flight requests per
// admission class and -max-pending bounds each engine commit queue;
// load past a budget is shed immediately with a typed StatusOverloaded
// response carrying a retry-after hint (see internal/server). All
// default to unlimited.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"pargeo/internal/engine"
	"pargeo/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7979", "listen address")
		dir       = flag.String("dir", "", "durability directory (WAL + checkpoints); empty runs in-memory")
		dim       = flag.Int("dim", 2, "point dimensionality (fixed for the engine's lifetime)")
		shards    = flag.Int("shards", engine.AutoShards, "shard count (-1 = one per GOMAXPROCS worker)")
		syncEvery = flag.Int("sync-every", 1, "fsync cadence: 1 = every commit (strict), K>1 = group of K (relaxed)")
		ckptEvery = flag.Int("checkpoint-every", 4096, "automatic checkpoint after N WAL records (0 = manual only)")
		rebalance = flag.Bool("rebalance", true, "run the online shard rebalancer")
		retain    = flag.Int("retain", 0, "MVCC retention window: keep the last N epochs answerable via as-of reads (0 = live only; pins work regardless)")

		// Overload control: finite budgets shed excess load with a typed
		// StatusOverloaded + retry hint instead of queueing it (0 = unlimited).
		maxReads   = flag.Int("max-reads", 0, "max in-flight read requests (KNN/range) before shedding; 0 = unlimited")
		maxWrites  = flag.Int("max-writes", 0, "max in-flight update requests before shedding; 0 = unlimited")
		maxControl = flag.Int("max-control", 0, "max in-flight control requests (epoch/checkpoint/stats) before shedding; 0 = unlimited")
		maxPending = flag.Int("max-pending", 0, "max updates parked on any engine commit queue before shedding; 0 = unlimited")
	)
	flag.Parse()
	log.SetPrefix("pargeo-serve: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	lim := server.Limits{Reads: *maxReads, Writes: *maxWrites, Control: *maxControl}
	if err := run(*addr, *dir, *dim, *shards, *syncEvery, *ckptEvery, *rebalance, *maxPending, *retain, lim); err != nil {
		log.Fatal(err)
	}
}

func run(addr, dir string, dim, shards, syncEvery, ckptEvery int, rebalance bool, maxPending, retain int, lim server.Limits) error {
	opts := engine.Options{Shards: shards, Rebalance: rebalance, MaxPending: maxPending, RetainEpochs: retain}
	if dir != "" {
		opts.Durability = &engine.Durability{
			Dir:             dir,
			SyncEvery:       syncEvery,
			CheckpointEvery: ckptEvery,
		}
	}
	eng, err := engine.Open(dim, opts)
	if err != nil {
		return fmt.Errorf("open engine: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		eng.Close()
		return err
	}
	srv := server.NewWithLimits(eng, dim, ln, lim)
	st := eng.Stats()
	log.Printf("listening on %s (dim=%d shards=%d epoch=%d size=%d durable=%v limits=reads:%d,writes:%d,control:%d)",
		ln.Addr(), dim, eng.Shards(), st.Epoch, st.Size, dir != "", lim.Reads, lim.Writes, lim.Control)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("%v: draining in-flight requests", s)
		srv.Shutdown()
	}()

	if err := srv.Serve(); err != nil {
		// Listener failure, not shutdown: still drain what's in flight
		// and close the engine cleanly before reporting it.
		srv.Shutdown()
		eng.Close()
		return fmt.Errorf("serve: %w", err)
	}
	srv.Shutdown() // idempotent: waits for the signal handler's drain
	st = eng.Stats()
	if err := eng.Close(); err != nil {
		return fmt.Errorf("close engine: %w", err)
	}
	log.Printf("shut down at epoch %d (size=%d, %d updates, %d queries served)",
		st.Epoch, st.Size, st.Updates, st.Queries)
	return nil
}
