package main

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pargeo/client"
	"pargeo/internal/geom"
)

// TestDaemonE2E is the end-to-end smoke test CI runs against the REAL
// binary: build pargeo-serve, start it on a durable directory, drive a
// concurrent loopback workload through the client package, kill the
// daemon with SIGTERM mid-write, restart it on the same directory, and
// verify epoch continuity — the restarted service resumes at (or past)
// every epoch the first incarnation acknowledged, with every acked
// insert live. This is the serving layer's crash-matrix analogue: not
// exhaustive fault points, but the full process lifecycle.
func TestDaemonE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon e2e builds and execs the binary; skipped in -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "pargeo-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building daemon: %v", err)
	}
	dataDir := filepath.Join(tmp, "db")

	// start launches the daemon and returns its process plus the address
	// parsed from the startup log line (the daemon binds :0, the
	// listener picks the port).
	start := func() (*exec.Cmd, string, chan error) {
		cmd := exec.Command(bin,
			"-addr", "127.0.0.1:0",
			"-dir", dataDir,
			"-dim", "2",
			"-shards", "4",
			"-sync-every", "1",
		)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		addrCh := make(chan string, 1)
		exited := make(chan error, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				line := sc.Text()
				t.Logf("daemon: %s", line)
				if i := strings.Index(line, "listening on "); i >= 0 {
					rest := line[i+len("listening on "):]
					if j := strings.IndexByte(rest, ' '); j > 0 {
						select {
						case addrCh <- rest[:j]:
						default:
						}
					}
				}
			}
			exited <- cmd.Wait()
		}()
		select {
		case addr := <-addrCh:
			return cmd, addr, exited
		case err := <-exited:
			t.Fatalf("daemon exited before listening: %v", err)
			return nil, "", nil
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Fatal("daemon never reported its address")
			return nil, "", nil
		}
	}

	cmd, addr, exited := start()

	// Concurrent writers through real connections; every acked insert is
	// remembered with the epoch that acknowledged it.
	const writers = 4
	var mu sync.Mutex
	acked := map[int32]bool{}
	var lastEpoch uint64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			for i := 0; ; i++ {
				p := geom.Points{Data: []float64{float64(w*10000 + i), float64(i % 100)}, Dim: 2}
				res := c.Insert(p)
				if res.Err != nil {
					// Shutdown in progress: only the typed endings are
					// acceptable.
					if !errors.Is(res.Err, client.ErrEngineClosed) && !errors.Is(res.Err, client.ErrConnClosed) {
						t.Errorf("writer %d: untyped error: %v", w, res.Err)
					}
					return
				}
				mu.Lock()
				acked[res.IDs[0]] = true
				if res.Epoch > lastEpoch {
					lastEpoch = res.Epoch
				}
				n := len(acked)
				mu.Unlock()
				if n > 5000 { // bounded: SIGTERM lands while we're still writing
					return
				}
			}
		}()
	}
	// Let the storm establish, then kill mid-flight.
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 200 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not exit after SIGTERM")
	}

	// Restart on the same directory: the recovered service must resume at
	// or past every epoch it acknowledged, with every acked insert live.
	cmd2, addr2, exited2 := start()
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		<-exited2
	}()
	c, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	epoch, err := c.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if epoch < lastEpoch {
		t.Fatalf("restarted at epoch %d, below last acknowledged epoch %d", epoch, lastEpoch)
	}
	everything := geom.Box{Min: []float64{-1e9, -1e9}, Max: []float64{1e9, 1e9}}
	ids, err := c.RangeSearch(everything)
	if err != nil {
		t.Fatal(err)
	}
	live := map[int32]bool{}
	for _, id := range ids {
		live[id] = true
	}
	for id := range acked {
		if !live[id] {
			t.Fatalf("id %d was acknowledged before SIGTERM but is not live after restart", id)
		}
	}
	if len(live) < len(acked) {
		t.Fatalf("restart recovered %d points, %d were acked", len(live), len(acked))
	}
	fmt.Printf("e2e: %d acked inserts survived SIGTERM restart, epoch %d -> %d\n", len(acked), lastEpoch, epoch)
}
