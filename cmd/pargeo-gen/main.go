// Command pargeo-gen generates the paper's benchmark data sets and writes
// them to disk as CSV (one point per line) so they can be fed to other
// tools or inspected:
//
//	pargeo-gen -dist uniform -n 1000000 -dim 3 -o 3D-U-1M.csv
//	pargeo-gen -dist onsphere -n 10000000 -dim 2 -seed 7 -o 2D-OS-10M.csv
//
// Distributions: uniform, insphere, onsphere, oncube, seedspreader,
// visualvar (2D only), statue (3D only), dragon (3D only).
package main

import (
	"flag"
	"fmt"
	"os"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/ptio"
)

func main() {
	dist := flag.String("dist", "uniform", "distribution: uniform|insphere|onsphere|oncube|seedspreader|visualvar|statue|dragon")
	n := flag.Int("n", 1000000, "number of points")
	dim := flag.Int("dim", 2, "dimension (2-8)")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	binary := flag.Bool("binary", false, "write the compact PGEO binary format instead of CSV")
	flag.Parse()

	var pts geom.Points
	switch *dist {
	case "uniform":
		pts = generators.UniformCube(*n, *dim, *seed)
	case "insphere":
		pts = generators.InSphere(*n, *dim, *seed)
	case "onsphere":
		pts = generators.OnSphere(*n, *dim, *seed)
	case "oncube":
		pts = generators.OnCube(*n, *dim, *seed)
	case "seedspreader":
		pts = generators.SeedSpreader(*n, *dim, *seed)
	case "visualvar":
		if *dim != 2 {
			fatal("visualvar is 2D only")
		}
		pts = generators.VisualVar(*n, *seed)
	case "statue":
		if *dim != 3 {
			fatal("statue is 3D only")
		}
		pts = generators.Statue(*n, *seed)
	case "dragon":
		if *dim != 3 {
			fatal("dragon is 3D only")
		}
		pts = generators.Dragon(*n, *seed)
	default:
		fatal("unknown distribution " + *dist)
	}

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err.Error())
		}
		defer f.Close()
		w = f
	}
	var err error
	if *binary {
		err = ptio.WriteBinary(w, pts)
	} else {
		err = ptio.WriteCSV(w, pts)
	}
	if err != nil {
		fatal(err.Error())
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "pargeo-gen:", msg)
	os.Exit(1)
}
