package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"pargeo/internal/engine"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// walBench measures what durability costs and what recovery buys back:
//
//   - Commit throughput with the WAL off (the in-memory engine), with the
//     WAL in relaxed group-sync mode (SyncEvery=64 — ack immediately,
//     fsync every 64 records), and with strict per-commit fsync
//     (SyncEvery=1). The waloff and wal-s64 rows are recorded for the
//     committed BENCH_wal.json and the CI compare gate; the strict row is
//     narrative only, because its throughput measures the host's fsync
//     latency (storage hardware), not this repository's code.
//   - Recovery throughput versus log length: points/s to reopen a
//     directory whose WAL holds 1/4, 1/2, and all of the data set
//     uncheckpointed, plus the checkpointed limit (replay ≈ 0, recovery =
//     checkpoint load + tree rebuild). These rows regression-gate the
//     replay and restore paths.
func walBench(n int, seed uint64, measure time.Duration) {
	fmt.Println("=== wal: durability overhead + recovery time (3D uniform) ===")
	const (
		dim      = 3
		updBatch = 512
	)
	cfg := struct{ writers, readers int }{4, 0}
	seedPts := generators.UniformCube(n, dim, seed)
	domain := geom.BoundingBoxAll(seedPts)

	type target struct {
		name     string
		recorded bool
		sync     int // 0 = WAL off
	}
	targets := []target{
		{"commit-waloff", true, 0},
		{"commit-wal-s64", true, 64},
		{"commit-wal-s1", false, 1},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "target\twriters\tupdates/s\tpoints/s")
	rate := map[string]float64{}
	for _, tg := range targets {
		var e *engine.Engine
		var dir string
		if tg.sync == 0 {
			e = engine.New(dim, engine.Options{Shards: 4})
		} else {
			var err error
			dir, err = os.MkdirTemp("", "pargeo-walbench-*")
			if err != nil {
				fmt.Fprintf(os.Stderr, "walbench: %v\n", err)
				os.Exit(1)
			}
			e, err = engine.Open(dim, engine.Options{Shards: 4, Durability: &engine.Durability{
				Dir: dir, SyncEvery: tg.sync,
			}})
			if err != nil {
				fmt.Fprintf(os.Stderr, "walbench: %v\n", err)
				os.Exit(1)
			}
		}
		e.Insert(seedPts)
		_, ups := runMixed(cfg.writers, cfg.readers, measure, domain, seed, updBatch,
			func(q []float64) {}, func(ins, del geom.Points) { e.Update(ins, del) })
		e.Close()
		if dir != "" {
			os.RemoveAll(dir)
		}
		rate[tg.name] = ups
		fmt.Fprintf(w, "%s\t%d\t%.3g\t%.3g\n", tg.name, cfg.writers, ups, ups*updBatch)
		if tg.recorded {
			secs := (time.Duration(mixedWindows) * measure).Seconds()
			record(BenchRecord{
				Experiment: "wal",
				Name:       fmt.Sprintf("%s/w=%d/updates", tg.name, cfg.writers),
				N:          n, Dim: dim, Seconds: secs, OpsPerSec: ups,
			})
		}
	}
	w.Flush()
	if off := rate["commit-waloff"]; off > 0 {
		fmt.Printf("\nWAL overhead at SyncEvery=64: %.1f%% (must stay ≤25%%); strict SyncEvery=1\n",
			(1-rate["commit-wal-s64"]/off)*100)
		fmt.Printf("runs at %.1f%% of waloff — that ratio is the host's fsync latency, not code.\n",
			rate["commit-wal-s1"]/off*100)
	}

	// Recovery time versus log length. Each run writes `logPts` points in
	// WAL records past the founding batch, closes cleanly, and times a
	// fresh Open: latest checkpoint (here: none, except the last row) +
	// full replay + tree rebuild.
	fmt.Println()
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "recovery\tWAL points\trecover ms\tpoints/s")
	for _, rc := range []struct {
		name   string
		logPts int
		ckpt   bool
	}{
		{"recover-log-quarter", n / 4, false},
		{"recover-log-half", n / 2, false},
		{"recover-log-full", n, false},
		{"recover-ckpt", n, true},
	} {
		dir, err := os.MkdirTemp("", "pargeo-walbench-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "walbench: %v\n", err)
			os.Exit(1)
		}
		open := func() (*engine.Engine, error) {
			return engine.Open(dim, engine.Options{Shards: 4, Durability: &engine.Durability{
				Dir: dir, SyncEvery: 64,
			}})
		}
		e, err := open()
		if err != nil {
			fmt.Fprintf(os.Stderr, "walbench: %v\n", err)
			os.Exit(1)
		}
		for lo := 0; lo < rc.logPts; lo += updBatch {
			hi := lo + updBatch
			if hi > rc.logPts {
				hi = rc.logPts
			}
			e.Insert(seedPts.Slice(lo, hi))
		}
		if rc.ckpt {
			if err := e.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "walbench: %v\n", err)
				os.Exit(1)
			}
		}
		e.Close()
		var re *engine.Engine
		secs := timeIt(func() {
			re, err = open()
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "walbench: recovery: %v\n", err)
			os.Exit(1)
		}
		if re.Size() != rc.logPts {
			fmt.Fprintf(os.Stderr, "walbench: recovered %d points, want %d\n", re.Size(), rc.logPts)
			os.Exit(1)
		}
		re.Close()
		os.RemoveAll(dir)
		pps := float64(rc.logPts) / secs
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.3g\n", rc.name, rc.logPts, secs*1000, pps)
		record(BenchRecord{
			Experiment: "wal",
			Name:       fmt.Sprintf("%s/points", rc.name),
			N:          rc.logPts, Dim: dim, Seconds: secs, OpsPerSec: pps,
		})
	}
	w.Flush()
	fmt.Println("\nCommit rows: 4 writers churn per-quadrant", updBatch, "-point batches (insert")
	fmt.Println("fresh + delete previous per update); wal-s64 appends every commit to the")
	fmt.Println("segmented WAL under the shard commit locks and fsyncs every 64 records,")
	fmt.Println("so acks don't wait on the disk. Recovery rows: time for Open to scan the")
	fmt.Println("log, replay records past the latest checkpoint, and rebuild the shard")
	fmt.Println("trees; recover-ckpt is the checkpointed limit (replay ≈ 0).")
}
