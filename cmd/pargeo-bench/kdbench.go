package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
	"pargeo/internal/kernel"
)

// kdBench measures the kd-tree hot paths the arena layout targets: Build
// (both split rules), single-query k-NN latency, the batched AllKNN pass,
// and range search. Each measurement is the best of three runs (builds) or
// an average over a fixed query count, and every row is recorded for -json
// output — this experiment generates the committed BENCH_kdtree.json.
//
// The SoA-vs-f64 section re-runs the query benchmarks with the float32
// leaf filter forced off (coordinates scaled beyond the f32-safe bound, so
// the tree takes its natural float64 fallback on an identical workload
// shape) — the delta is the filter's contribution in isolation. The -f64
// rows are recorded like every other, so the baseline also gates the
// fallback path.
func kdBench(n int, seed uint64) {
	fmt.Printf("=== kd-tree microbenchmarks (dim-major f32 leaf slabs, kernel %s) ===\n", kernel.Impl())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "operation\tns/op\tops/s\n")
	row := func(name string, dim int, secs float64, ops int) {
		nsPerOp := secs * 1e9 / float64(ops)
		opsPerSec := float64(ops) / secs
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\n", name, nsPerOp, opsPerSec)
		record(BenchRecord{
			Experiment: "kdtree",
			Name:       name,
			N:          n,
			Dim:        dim,
			Seconds:    secs,
			NsPerOp:    nsPerOp,
			OpsPerSec:  opsPerSec,
		})
	}
	bestOf := func(runs int, f func()) float64 {
		best := timeIt(f)
		for i := 1; i < runs; i++ {
			if s := timeIt(f); s < best {
				best = s
			}
		}
		return best
	}

	for _, dim := range []int{2, 5} {
		pts := generators.UniformCube(n, dim, seed+uint64(dim))
		for _, split := range []kdtree.SplitRule{kdtree.ObjectMedian, kdtree.SpatialMedian} {
			split := split
			secs := bestOf(3, func() { kdtree.Build(pts, kdtree.Options{Split: split}) })
			row(fmt.Sprintf("Build/d=%d/%s", dim, split), dim, secs, 1)
		}

		t := kdtree.Build(pts, kdtree.Options{})

		// Single-query latency: sequential scan over a fixed query sample.
		nq := 2000
		if nq > n {
			nq = n
		}
		buf := kdtree.NewKNNBuffer(5)
		secs := bestOf(3, func() {
			for q := 0; q < nq; q++ {
				buf.Reset()
				t.KNNInto(pts.At(q), int32(q), buf)
			}
		})
		row(fmt.Sprintf("KNNQuery/d=%d/k=5", dim), dim, secs, nq)

		// Batched all-points pass (data-parallel).
		secs = bestOf(2, func() { t.AllKNN(5, nil) })
		row(fmt.Sprintf("AllKNN/d=%d/k=5", dim), dim, secs, n)

		// Range search around sampled centers.
		boxes := make([]geom.Box, 256)
		for i := range boxes {
			c := pts.At(i * (n / len(boxes)))
			b := geom.EmptyBox(dim)
			lo := make([]float64, dim)
			hi := make([]float64, dim)
			for d := 0; d < dim; d++ {
				lo[d], hi[d] = c[d]-6, c[d]+6
			}
			b.Expand(lo)
			b.Expand(hi)
			boxes[i] = b
		}
		secs = bestOf(3, func() { t.RangeSearchParallel(boxes) })
		row(fmt.Sprintf("RangeSearch/d=%d", dim), dim, secs, len(boxes))

		// SoA-vs-f64: the same workload with every coordinate scaled past
		// the f32-safe bound, so the build keeps its float64 fallback and
		// the filter's contribution shows up as the -f64 row delta.
		const scale = 1e20
		pts64 := geom.NewPoints(n, dim)
		crow := make([]float64, dim)
		for i := 0; i < n; i++ {
			p := pts.At(i)
			for c := 0; c < dim; c++ {
				crow[c] = p[c] * scale
			}
			pts64.Set(i, crow)
		}
		t64 := kdtree.Build(pts64, kdtree.Options{})
		secs = bestOf(3, func() {
			for q := 0; q < nq; q++ {
				buf.Reset()
				t64.KNNInto(pts64.At(q), int32(q), buf)
			}
		})
		row(fmt.Sprintf("KNNQuery-f64/d=%d/k=5", dim), dim, secs, nq)
		secs = bestOf(2, func() { t64.AllKNN(5, nil) })
		row(fmt.Sprintf("AllKNN-f64/d=%d/k=5", dim), dim, secs, n)
		boxes64 := make([]geom.Box, len(boxes))
		for i, b := range boxes {
			s := geom.EmptyBox(dim)
			lo := make([]float64, dim)
			hi := make([]float64, dim)
			for d := 0; d < dim; d++ {
				lo[d], hi[d] = b.Min[d]*scale, b.Max[d]*scale
			}
			s.Expand(lo)
			s.Expand(hi)
			boxes64[i] = s
		}
		secs = bestOf(3, func() { t64.RangeSearchParallel(boxes64) })
		row(fmt.Sprintf("RangeSearch-f64/d=%d", dim), dim, secs, len(boxes64))
	}
	w.Flush()
}
