package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/kdtree"
)

// kdBench measures the kd-tree hot paths the arena layout targets: Build
// (both split rules), single-query k-NN latency, the batched AllKNN pass,
// and range search. Each measurement is the best of three runs (builds) or
// an average over a fixed query count, and every row is recorded for -json
// output — this experiment generates the committed BENCH_kdtree.json.
func kdBench(n int, seed uint64) {
	fmt.Println("=== kd-tree microbenchmarks (flat arena + leaf coordinate cache) ===")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "operation\tns/op\tops/s\n")
	row := func(name string, dim int, secs float64, ops int) {
		nsPerOp := secs * 1e9 / float64(ops)
		opsPerSec := float64(ops) / secs
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\n", name, nsPerOp, opsPerSec)
		record(BenchRecord{
			Experiment: "kdtree",
			Name:       name,
			N:          n,
			Dim:        dim,
			Seconds:    secs,
			NsPerOp:    nsPerOp,
			OpsPerSec:  opsPerSec,
		})
	}
	bestOf := func(runs int, f func()) float64 {
		best := timeIt(f)
		for i := 1; i < runs; i++ {
			if s := timeIt(f); s < best {
				best = s
			}
		}
		return best
	}

	for _, dim := range []int{2, 5} {
		pts := generators.UniformCube(n, dim, seed+uint64(dim))
		for _, split := range []kdtree.SplitRule{kdtree.ObjectMedian, kdtree.SpatialMedian} {
			split := split
			secs := bestOf(3, func() { kdtree.Build(pts, kdtree.Options{Split: split}) })
			row(fmt.Sprintf("Build/d=%d/%s", dim, split), dim, secs, 1)
		}

		t := kdtree.Build(pts, kdtree.Options{})

		// Single-query latency: sequential scan over a fixed query sample.
		nq := 2000
		if nq > n {
			nq = n
		}
		buf := kdtree.NewKNNBuffer(5)
		secs := bestOf(3, func() {
			for q := 0; q < nq; q++ {
				buf.Reset()
				t.KNNInto(pts.At(q), int32(q), buf)
			}
		})
		row(fmt.Sprintf("KNNQuery/d=%d/k=5", dim), dim, secs, nq)

		// Batched all-points pass (data-parallel).
		secs = bestOf(2, func() { t.AllKNN(5, nil) })
		row(fmt.Sprintf("AllKNN/d=%d/k=5", dim), dim, secs, n)

		// Range search around sampled centers.
		boxes := make([]geom.Box, 256)
		for i := range boxes {
			c := pts.At(i * (n / len(boxes)))
			b := geom.EmptyBox(dim)
			lo := make([]float64, dim)
			hi := make([]float64, dim)
			for d := 0; d < dim; d++ {
				lo[d], hi[d] = c[d]-6, c[d]+6
			}
			b.Expand(lo)
			b.Expand(hi)
			boxes[i] = b
		}
		secs = bestOf(3, func() { t.RangeSearchParallel(boxes) })
		row(fmt.Sprintf("RangeSearch/d=%d", dim), dim, secs, len(boxes))
	}
	w.Flush()
}
