package main

import (
	"testing"
	"time"
)

func TestParseThreadsExplicit(t *testing.T) {
	got := parseThreads("1, 2,8")
	want := []int{1, 2, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseThreadsDefaultDoubling(t *testing.T) {
	got := parseThreads("")
	if len(got) == 0 || got[0] != 1 {
		t.Fatalf("default should start at 1: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not increasing: %v", got)
		}
	}
}

func TestTimeItMeasures(t *testing.T) {
	sec := timeIt(func() { time.Sleep(12 * time.Millisecond) })
	if sec < 0.010 || sec > 1 {
		t.Fatalf("timeIt = %v", sec)
	}
}

func TestWithThreadsRestores(t *testing.T) {
	withThreads(1, func() {})
	// Smoke check: ms formatting.
	if got := ms(0.0123); got != "12.3" {
		t.Fatalf("ms = %q", got)
	}
}
