package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestJSONRecorderRoundTrip(t *testing.T) {
	benchMu.Lock()
	benchResults = nil
	benchMu.Unlock()
	record(BenchRecord{Experiment: "kdtree", Name: "Build/d=2/object", N: 1000, Dim: 2, Seconds: 0.5, NsPerOp: 5e8})
	record(BenchRecord{Experiment: "table1", Name: "EMST (2d)", N: 1000, Threads: 1, Seconds: 1.25})
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeJSON(path, 1000, 42); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc BenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unparseable output: %v", err)
	}
	if len(doc.Results) != 2 || doc.BaseN != 1000 || doc.Seed != 42 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Results[0].Name != "Build/d=2/object" || doc.Results[0].NsPerOp != 5e8 {
		t.Fatalf("record 0 = %+v", doc.Results[0])
	}
	if doc.Results[1].Threads != 1 {
		t.Fatalf("record 1 threads = %d", doc.Results[1].Threads)
	}
}

func TestParseThreadsExplicit(t *testing.T) {
	got := parseThreads("1, 2,8")
	want := []int{1, 2, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseThreadsDefaultDoubling(t *testing.T) {
	got := parseThreads("")
	if len(got) == 0 || got[0] != 1 {
		t.Fatalf("default should start at 1: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not increasing: %v", got)
		}
	}
}

func TestTimeItMeasures(t *testing.T) {
	sec := timeIt(func() { time.Sleep(12 * time.Millisecond) })
	if sec < 0.010 || sec > 1 {
		t.Fatalf("timeIt = %v", sec)
	}
}

func TestWithThreadsRestores(t *testing.T) {
	withThreads(1, func() {})
	// Smoke check: ms formatting.
	if got := ms(0.0123); got != "12.3" {
		t.Fatalf("ms = %q", got)
	}
}
