package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"pargeo/internal/bdltree"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
)

// bdlVariant names one curve of Figures 11/14.
type bdlVariant struct {
	name  string
	mk    func() bdltree.Dynamic
	split bdltree.SplitRule
}

func bdlVariants(dim int) []bdlVariant {
	return []bdlVariant{
		{"B1-object", func() bdltree.Dynamic { return bdltree.NewB1(dim, bdltree.ObjectMedian) }, bdltree.ObjectMedian},
		{"B1-spatial", func() bdltree.Dynamic { return bdltree.NewB1(dim, bdltree.SpatialMedian) }, bdltree.SpatialMedian},
		{"B2-object", func() bdltree.Dynamic { return bdltree.NewB2(dim, bdltree.ObjectMedian) }, bdltree.ObjectMedian},
		{"B2-spatial", func() bdltree.Dynamic { return bdltree.NewB2(dim, bdltree.SpatialMedian) }, bdltree.SpatialMedian},
		{"BDL-object", func() bdltree.Dynamic { return bdltree.New(dim, bdltree.Options{Split: bdltree.ObjectMedian}) }, bdltree.ObjectMedian},
		{"BDL-spatial", func() bdltree.Dynamic { return bdltree.New(dim, bdltree.Options{Split: bdltree.SpatialMedian}) }, bdltree.SpatialMedian},
	}
}

// fig11 regenerates Figure 11: throughput (points/s or queries/s) of
// construction, 10% batch insertion, 10% batch deletion, and full k-NN on
// 7D uniform data, as the thread count varies.
func fig11(n int, seed uint64, threads []int) {
	fmt.Println("=== Figure 11: BDL-tree throughput vs threads, 7D uniform ===")
	pts := generators.UniformCube(n, 7, seed)
	batch := n / 10

	type op struct {
		name string
		run  func(v bdlVariant) float64 // returns ops/sec at current GOMAXPROCS
	}
	ops := []op{
		{"(a) construction", func(v bdlVariant) float64 {
			tr := v.mk()
			t := timeIt(func() { tr.Insert(pts) })
			return float64(n) / t
		}},
		{"(b) 10% batch insert", func(v bdlVariant) float64 {
			tr := v.mk()
			t := timeIt(func() {
				for i := 0; i < 10; i++ {
					tr.Insert(pts.Slice(i*batch, (i+1)*batch))
				}
			})
			return float64(10*batch) / t
		}},
		{"(c) 10% batch delete", func(v bdlVariant) float64 {
			tr := v.mk()
			tr.Insert(pts)
			t := timeIt(func() {
				for i := 0; i < 10; i++ {
					tr.Delete(pts.Slice(i*batch, (i+1)*batch))
				}
			})
			return float64(10*batch) / t
		}},
		{"(d) full k-NN (k=5)", func(v bdlVariant) float64 {
			tr := v.mk()
			ids := tr.Insert(pts)
			t := timeIt(func() { tr.KNN(pts, 5, ids) })
			return float64(n) / t
		}},
	}
	for _, o := range ops {
		fmt.Printf("\n--- %s (throughput, ops/s) ---\n", o.name)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprint(w, "variant")
		for _, p := range threads {
			fmt.Fprintf(w, "\tP=%d", p)
		}
		fmt.Fprintln(w)
		for _, v := range bdlVariants(7) {
			fmt.Fprintf(w, "%s", v.name)
			for _, p := range threads {
				var thr float64
				withThreads(p, func() { thr = o.run(v) })
				fmt.Fprintf(w, "\t%.3g", thr)
			}
			fmt.Fprintln(w)
		}
		w.Flush()
	}
	fmt.Println("\nPaper shape: BDL construction beats B1/B2; B2 wins batch updates")
	fmt.Println("(no rebalancing); B1/B2 beat BDL on one-shot k-NN (single balanced")
	fmt.Println("tree vs log-many trees); spatial median is faster serially but")
	fmt.Println("scales worse than object median.")
}

// fig14 regenerates Figure 14: k-NN throughput vs k after the trees are
// built by a sequence of 5% batch insertions (Appendix D: B2 degrades
// because its incremental tree is unbalanced).
func fig14(n int, seed uint64) {
	fmt.Println("=== Figure 14: k-NN throughput vs k, trees built by 5-percent batches ===")
	sets := []struct {
		name string
		pts  geom.Points
	}{
		{"2D-V", generators.VisualVar(n, seed)},
		{"7D-U", generators.UniformCube(n, 7, seed+1)},
	}
	batch := n / 20 // 5% batches
	for _, s := range sets {
		fmt.Printf("\n--- %s ---\n", s.name)
		dim := s.pts.Dim
		variants := []bdlVariant{
			{"B1-object", func() bdltree.Dynamic { return bdltree.NewB1(dim, bdltree.ObjectMedian) }, bdltree.ObjectMedian},
			{"B2-object", func() bdltree.Dynamic { return bdltree.NewB2(dim, bdltree.ObjectMedian) }, bdltree.ObjectMedian},
			{"BDL-object", func() bdltree.Dynamic { return bdltree.New(dim, bdltree.Options{Split: bdltree.ObjectMedian}) }, bdltree.ObjectMedian},
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprint(w, "variant")
		for k := 2; k <= 11; k++ {
			fmt.Fprintf(w, "\tk=%d", k)
		}
		fmt.Fprintln(w)
		for _, v := range variants {
			tr := v.mk()
			var ids []int32
			for i := 0; i*batch < s.pts.Len(); i++ {
				hi := (i + 1) * batch
				if hi > s.pts.Len() {
					hi = s.pts.Len()
				}
				ids = append(ids, tr.Insert(s.pts.Slice(i*batch, hi))...)
			}
			fmt.Fprintf(w, "%s", v.name)
			for k := 2; k <= 11; k++ {
				pts := s.pts
				t := timeIt(func() { tr.KNN(pts, k, ids) })
				fmt.Fprintf(w, "\t%.3g", float64(pts.Len())/t)
			}
			fmt.Fprintln(w)
		}
		w.Flush()
	}
	fmt.Println("\nPaper shape: B1 best (rebuilt balanced every batch), BDL close,")
	fmt.Println("B2 significantly worse — its incrementally grown tree is unbalanced.")
}
