package main

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"pargeo/client"
	"pargeo/internal/engine"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/server"
)

// overloadBench measures graceful degradation: what happens to goodput
// and to the tail latency of the requests that still SUCCEED when the
// offered load is pushed past what the serving path can absorb.
//
// The experiment has two phases:
//
//  1. A saturation probe: closed-loop unbatched callers hammer the
//     server and the sustained successful throughput is taken as the
//     saturation rate of the per-request serving path. Sheds during the
//     probe are expected (that is the admission controller doing its
//     job) — callers back off by the server's retry hint and only
//     successes count.
//
//  2. An open-loop sweep at {0.5, 1, 1.5, 2}× that rate through an
//     adaptive-window client (Options.MaxWindow): requests arrive on a
//     Poisson schedule whether or not the server is keeping up, each
//     latency is measured from the request's SCHEDULED arrival (no
//     coordinated omission), and a shed — ErrOverloaded, never a hang —
//     is counted against goodput instead of aborting the run. Load is
//     mixed 3:1 KNN:insert, classed and budgeted separately by the
//     server's admission gates.
//
// The committed BENCH_overload.json rows are the goodput at each
// multiplier plus p50/p99/p999 of the successful requests per class;
// -overload-assert additionally gates the graceful-degradation contract
// in-process (goodput at 2× within 80% of the best observed goodput,
// successful-read p99 bounded), which is what the nightly stress job
// runs.
func overloadBench(n int, seed uint64, measure time.Duration, assert bool) {
	fmt.Println("=== overload: admission control & backpressure at 0.5–2× saturation (2D uniform) ===")
	const (
		dim       = 2
		knnK      = 8
		insFrac   = 0.25 // fraction of arrivals that are inserts
		sweepReps = 3    // windows per multiplier; percentiles are medians
	)
	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "overloadbench: %v\n", err)
		os.Exit(1)
	}

	// Finite budgets everywhere: per-class admission at the server,
	// bounded commit queue at the engine. These scale with the host so
	// the probe can actually reach saturation rather than the limits.
	procs := runtime.GOMAXPROCS(0)
	lim := server.Limits{
		Reads:   max(4, 2*procs),
		Writes:  max(2, procs),
		Control: 4,
	}
	eng := engine.New(dim, engine.Options{Shards: 4, MaxPending: 32})
	seedPts := generators.UniformCube(n, dim, seed)
	if res := eng.Insert(seedPts); res.Err != nil {
		fatal(res.Err)
	}
	domain := geom.BoundingBoxAll(seedPts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	srv := server.NewWithLimits(eng, dim, ln, lim)
	go srv.Serve() //nolint:errcheck // exits nil on Shutdown
	defer func() { srv.Shutdown(); eng.Close() }()
	addr := ln.Addr().String()

	span := func(rng *rand.Rand) []float64 {
		p := make([]float64, dim)
		for d := range p {
			p[d] = domain.Min[d] + rng.Float64()*(domain.Max[d]-domain.Min[d])
		}
		return p
	}

	// --- phase 1: saturation probe ---------------------------------------
	peak := probeSaturation(addr, span, measure, insFrac, knnK, fatal)
	fmt.Printf("saturation: %.0f ops/s sustained by %d closed-loop unbatched callers "+
		"(limits reads=%d writes=%d, engine max-pending=32)\n\n", peak, probeCallers, lim.Reads, lim.Writes)
	record(BenchRecord{Experiment: "overload", Name: "peak-closed", N: n, Dim: dim,
		Seconds: measure.Seconds(), OpsPerSec: peak})

	// --- phase 2: open-loop sweep -----------------------------------------
	// One adaptive-window client carries the whole sweep: the window
	// grows while responses are healthy and backs off on sheds or RTT
	// inflation, so client-side merging depth adapts to the overload.
	c, err := client.DialWith(addr, client.Options{MaxWindow: 32})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	rows := make([]sweepRow, 0, 4)
	for _, mult := range []float64{0.5, 1.0, 1.5, 2.0} {
		row := sweepRow{mult: mult, knnLat: make([][]float64, sweepReps), insLat: make([][]float64, sweepReps)}
		rng := rand.New(rand.NewSource(int64(seed) ^ int64(mult*1000)))
		for rep := 0; rep < sweepReps; rep++ {
			res := overloadWindow(c, span, peak*mult, measure, insFrac, knnK, rng, fatal)
			row.knnLat[rep], row.insLat[rep] = res.knnLat, res.insLat
			row.knnOK += res.knnOK
			row.insOK += res.insOK
			row.knnShed += res.knnShed
			row.insShed += res.insShed
		}
		secs := measure.Seconds() * sweepReps
		row.goodput = float64(row.knnOK+row.insOK) / secs
		row.shed = float64(row.knnShed+row.insShed) / secs
		rows = append(rows, row)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "load\toffered/s\tgoodput/s\tshed/s\tknn p50\tknn p99\tknn p999\tins p99")
	for _, row := range rows {
		fmt.Fprintf(w, "%.1fx\t%.0f\t%.0f\t%.0f\t%s\t%s\t%s\t%s\n",
			row.mult, peak*row.mult, row.goodput, row.shed,
			time.Duration(medianPctile(row.knnLat, 50)),
			time.Duration(medianPctile(row.knnLat, 99)),
			time.Duration(medianPctile(row.knnLat, 99.9)),
			time.Duration(medianPctile(row.insLat, 99)))
	}
	w.Flush()

	for _, row := range rows {
		tag := fmt.Sprintf("%.1fx", row.mult)
		record(BenchRecord{Experiment: "overload", Name: "goodput-" + tag, N: n, Dim: dim,
			Seconds: measure.Seconds(), OpsPerSec: row.goodput})
		// Percentile rows are committed only for the healthy (0.5×) and
		// overloaded (2×) regimes the degradation contract is about. At
		// offered loads pinned to ρ≈1 the queue is a critical random walk
		// and its tail has unbounded variance across runs — a p99 there
		// swings 30× run to run and would make the compare gate flake.
		if row.mult != 0.5 && row.mult != 2.0 {
			continue
		}
		for _, p := range []struct {
			tag string
			v   float64
		}{
			{"knn-p50", medianPctile(row.knnLat, 50)},
			{"knn-p99", medianPctile(row.knnLat, 99)},
			{"knn-p999", medianPctile(row.knnLat, 99.9)},
			{"insert-p50", medianPctile(row.insLat, 50)},
			{"insert-p99", medianPctile(row.insLat, 99)},
			{"insert-p999", medianPctile(row.insLat, 99.9)},
		} {
			record(BenchRecord{Experiment: "overload", Name: p.tag + "-" + tag, N: n, Dim: dim,
				Seconds: measure.Seconds(), NsPerOp: p.v})
		}
	}

	if assert {
		assertGracefulDegradation(peak, rows, fatal)
	}
}

// sweepRow is one open-loop multiplier's aggregate over its windows.
type sweepRow struct {
	mult             float64
	goodput, shed    float64 // ops/s over the windows
	knnLat, insLat   [][]float64
	knnOK, insOK     int64
	knnShed, insShed int64
}

// assertGracefulDegradation is the nightly stress gate: at 2× saturation
// the system must still deliver ≥ 80% of the best goodput it showed
// anywhere in the run, and the reads that DO succeed must stay fast —
// shed-don't-queue means overload shows up as typed refusals, not as an
// unbounded successful-request tail.
func assertGracefulDegradation(peak float64, rows []sweepRow, fatal func(error)) {
	best := peak
	for _, row := range rows {
		if row.goodput > best {
			best = row.goodput
		}
	}
	last := rows[len(rows)-1]
	if last.goodput < 0.8*best {
		fatal(fmt.Errorf("graceful degradation violated: goodput at 2x saturation is %.0f ops/s, "+
			"< 80%% of best observed %.0f ops/s", last.goodput, best))
	}
	if p99 := medianPctile(last.knnLat, 99); p99 > float64(time.Second) {
		fatal(fmt.Errorf("graceful degradation violated: successful-read p99 at 2x saturation is %s, "+
			"> 1s bound", time.Duration(p99)))
	}
	fmt.Printf("\noverload-assert: PASS (goodput at 2x = %.0f%% of best %.0f ops/s, knn p99 %s)\n",
		100*last.goodput/best, best, time.Duration(medianPctile(last.knnLat, 99)))
}

const probeCallers = 16

// probeSaturation runs closed-loop unbatched callers against the server
// and returns the sustained SUCCESSFUL throughput — the saturation rate
// of the per-request serving path. Callers past the admission budgets
// are shed; they honor the server's retry hint and only successes count,
// so the probe measures capacity, not the shed rate.
func probeSaturation(addr string, span func(*rand.Rand) []float64, measure time.Duration,
	insFrac float64, knnK int, fatal func(error)) float64 {
	clients := make([]*client.Client, probeCallers)
	for i := range clients {
		uc, err := client.DialWith(addr, client.Options{NoBatch: true})
		if err != nil {
			fatal(err)
		}
		defer uc.Close()
		clients[i] = uc
	}
	var ok atomic.Int64
	var wg sync.WaitGroup
	stop := time.Now().Add(measure)
	for g := 0; g < probeCallers; g++ {
		cc := clients[g]
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 7))
			for time.Now().Before(stop) {
				var err error
				var hint time.Duration
				if rng.Float64() < insFrac {
					res := cc.Insert(geom.Points{Data: span(rng), Dim: 2})
					err = res.Err
				} else {
					_, err = cc.KNN(span(rng), knnK)
				}
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, client.ErrOverloaded):
					var oe *client.OverloadedError
					if errors.As(err, &oe) {
						hint = oe.RetryAfter
					}
					if hint <= 0 {
						hint = time.Millisecond
					}
					time.Sleep(hint)
				default:
					fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	return float64(ok.Load()) / measure.Seconds()
}

// overloadResult is one open-loop window's outcome: per-class success
// latencies (ns, from scheduled arrival) and shed counts.
type overloadResult struct {
	knnLat, insLat   []float64
	knnOK, insOK     int64
	knnShed, insShed int64
}

// overloadWindow fires one open-loop window of mixed load at rate/s.
// Unlike the serve experiment's openLoop, a shed is an expected outcome
// here — it is counted, not fatal — and only successful requests
// contribute latencies. Any OTHER error (hang, corrupt frame, dropped
// connection) still aborts the run: overload must surface as typed
// StatusOverloaded and nothing else.
func overloadWindow(c *client.Client, span func(*rand.Rand) []float64, rate float64,
	measure time.Duration, insFrac float64, knnK int, rng *rand.Rand, fatal func(error)) overloadResult {
	var scheduled []time.Duration
	for t := time.Duration(0); ; {
		t += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if t >= measure {
			break
		}
		scheduled = append(scheduled, t)
	}
	nReq := len(scheduled)
	isInsert := make([]bool, nReq)
	rngs := make([]*rand.Rand, nReq)
	for i := range rngs {
		isInsert[i] = rng.Float64() < insFrac
		rngs[i] = rand.New(rand.NewSource(rng.Int63()))
	}
	lat := make([]float64, nReq)
	shed := make([]bool, nReq)
	var wg sync.WaitGroup
	start := time.Now().Add(5 * time.Millisecond)
	for i, off := range scheduled {
		at := start.Add(off)
		time.Sleep(time.Until(at))
		wg.Add(1)
		go func(i int, at time.Time) {
			defer wg.Done()
			var err error
			if isInsert[i] {
				res := c.Insert(geom.Points{Data: span(rngs[i]), Dim: 2})
				err = res.Err
			} else {
				_, err = c.KNN(span(rngs[i]), knnK)
			}
			switch {
			case err == nil:
				lat[i] = float64(time.Since(at).Nanoseconds())
			case errors.Is(err, client.ErrOverloaded):
				shed[i] = true
			default:
				fatal(err)
			}
		}(i, at)
	}
	wg.Wait()
	var res overloadResult
	for i := 0; i < nReq; i++ {
		switch {
		case shed[i] && isInsert[i]:
			res.insShed++
		case shed[i]:
			res.knnShed++
		case isInsert[i]:
			res.insOK++
			res.insLat = append(res.insLat, lat[i])
		default:
			res.knnOK++
			res.knnLat = append(res.knnLat, lat[i])
		}
	}
	return res
}
