package main

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"pargeo/internal/engine"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/rng"
)

// mvccBench measures what MVCC retention and pinned-snapshot analytics
// cost the write path — the interference budget behind the engine's
// claim that long analytics jobs and live writers coexist.
//
// The experiment has two parts:
//
//  1. Interference: two writer goroutines churn stationary per-quadrant
//     batches against an engine with a RetainEpochs=64 window, first
//     alone (the no-analytics baseline) and then concurrently with a
//     duty-cycled analytics job that repeatedly pins the latest version,
//     runs an AllKNN pass over a sample of the pinned points, and
//     releases. The job holds its duty cycle at ~16% of wall time by
//     sleeping between passes in proportion to each pass's measured
//     length, so the comparison is honest on any core count — on a
//     single-core host an unthrottled analytics loop would simply
//     time-slice half the CPU and measure the scheduler, not the
//     engine's isolation. The headline ratio is concurrent writer
//     throughput over baseline; snapshot isolation plus the bounded duty
//     cycle should keep it >= 70%.
//
//  2. Retention overhead: a single writer commits the same churn stream
//     into engines with RetainEpochs 0, 64, and 256 and the marginal
//     retained memory (Stats().RetainedBytes: bytes reachable from
//     retained/pinned versions but NOT from the live one) is reported
//     per window size. Because versions share structure, the cost per
//     retained epoch is the delta the epoch's commit rebuilt — far below
//     a full copy — and this table is where that claim is checked.
//
// Interference rows follow the drift experiment's fixed-window protocol
// (median of 5 one-second windows) so the committed BENCH_mvcc.json and
// CI regression runs use identical measurements; retention-overhead
// bytes are printed but not recorded, since memory footprints do not
// scale with machine speed and would distort the compare gate's
// median-ratio normalizer. -mvcc-assert additionally gates the >= 70%
// interference contract in-process, which is what the nightly stress job
// runs.
func mvccBench(n int, seed uint64, assert bool) {
	fmt.Println("=== mvcc: pinned-snapshot analytics vs writer interference (2D uniform) ===")
	const (
		dim     = 2
		writers = 2
		batchB  = 256
		retain  = 64
		knnK    = 8
		sampleQ = 8192
		duty    = 0.16 // analytics duty cycle: fraction of wall time inside passes
	)
	seedPts := generators.UniformCube(n, dim, seed)
	domain := geom.BoundingBoxAll(seedPts)

	type armResult struct {
		ups      float64 // median writer throughput (updates/s)
		passes   int64   // completed analytics passes
		queries  float64 // AllKNN queries answered per second of pass time
		retained uint64  // Stats().RetainedBytes at the end of the run
		lag      uint64  // final live epoch minus last pinned epoch
	}
	runArm := func(analytics bool) armResult {
		e := engine.New(dim, engine.Options{Shards: 4, RetainEpochs: retain})
		defer e.Close()
		if res := e.Insert(seedPts); res.Err != nil {
			fmt.Fprintf(os.Stderr, "mvccbench: %v\n", res.Err)
			os.Exit(1)
		}
		var stop atomic.Bool
		var u atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < writers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rng.NewXoshiro256(seed + uint64(i)*1e6 + 41)
				region := writerRegion(i, domain)
				var prev geom.Points
				for !stop.Load() {
					batch := geom.NewPoints(batchB, dim)
					for j := 0; j < batchB; j++ {
						p := batch.At(j)
						for c := range p {
							p[c] = region.Min[c] + r.Float64()*(region.Max[c]-region.Min[c])
						}
					}
					e.Update(batch, prev)
					prev = batch
					u.Add(1)
				}
			}()
		}
		var res armResult
		if analytics {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rng.NewXoshiro256(seed + 97)
				var passSecs float64
				var queries int64
				for !stop.Load() {
					s := e.Pin()
					pts, _ := s.Points()
					m := sampleQ
					if pts.Len() < m {
						m = pts.Len()
					}
					sample := geom.NewPoints(m, dim)
					for j := 0; j < m; j++ {
						sample.Set(j, pts.At(r.Intn(pts.Len())))
					}
					start := time.Now()
					s.AllKNN(sample, knnK, nil)
					pass := time.Since(start)
					res.lag = e.Epoch() - s.Epoch()
					s.Release()
					passSecs += pass.Seconds()
					queries += int64(m)
					res.passes++
					res.queries = float64(queries) / passSecs
					// Hold the duty cycle: sleep long enough that passes
					// occupy ~duty of wall time regardless of how fast one
					// pass runs on this host.
					time.Sleep(time.Duration(float64(pass) * (1 - duty) / duty))
				}
			}()
		}
		var ud []float64
		for w := 0; w < mvccWindows; w++ {
			u0 := u.Load()
			time.Sleep(mvccWindow)
			ud = append(ud, float64(u.Load()-u0)/mvccWindow.Seconds())
		}
		res.retained = e.Stats().RetainedBytes
		stop.Store(true)
		wg.Wait()
		sort.Float64s(ud)
		res.ups = ud[mvccWindows/2]
		return res
	}

	base := runArm(false)
	conc := runArm(true)
	ratio := conc.ups / base.ups

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "arm\twriters\tupdates/s\tanalytics passes\tallknn queries/s\tpin lag (epochs)\tretained MB")
	fmt.Fprintf(w, "no-analytics\t%d\t%.3g\t-\t-\t-\t%.1f\n",
		writers, base.ups, float64(base.retained)/1e6)
	fmt.Fprintf(w, "pinned-allknn\t%d\t%.3g\t%d\t%.3g\t%d\t%.1f\n",
		writers, conc.ups, conc.passes, conc.queries, conc.lag, float64(conc.retained)/1e6)
	w.Flush()
	fmt.Printf("\ninterference: concurrent writer throughput is %.0f%% of the no-analytics "+
		"baseline (analytics duty cycle %.0f%%, RetainEpochs=%d)\n", 100*ratio, 100*duty, retain)

	secs := (time.Duration(mvccWindows) * mvccWindow).Seconds()
	record(BenchRecord{Experiment: "mvcc", Name: "updates-no-analytics", N: n, Dim: dim,
		Seconds: secs, OpsPerSec: base.ups})
	record(BenchRecord{Experiment: "mvcc", Name: "updates-with-pinned-allknn", N: n, Dim: dim,
		Seconds: secs, OpsPerSec: conc.ups})
	record(BenchRecord{Experiment: "mvcc", Name: "pinned-allknn-queries", N: n, Dim: dim,
		Seconds: secs, OpsPerSec: conc.queries})

	retentionSweep(n, seed, seedPts, domain, batchB)

	if assert && ratio < 0.70 {
		fmt.Fprintf(os.Stderr, "mvccbench: interference contract violated: concurrent writer "+
			"throughput %.0f%% of baseline, want >= 70%%\n", 100*ratio)
		os.Exit(1)
	}
	if assert {
		fmt.Printf("mvcc-assert: PASS (concurrent writers at %.0f%% of baseline)\n", 100*ratio)
	}
}

// Interference measurement protocol: fixed windows with the median taken,
// exactly like the drift experiment (see engine.go) and for the same
// reason — the committed baseline and CI's fresh runs must measure the
// same thing, and the median discards the odd window distorted by a GC
// pause or a repartition.
const (
	mvccWindows = 5
	mvccWindow  = time.Second
)

// retentionSweep reports the marginal memory cost of the retention window
// itself: identical churn streams committed into engines that retain 0,
// 64, and 256 epochs, with Stats().RetainedBytes (bytes reachable only
// from retained versions, live structure excluded) at the end. Retained
// epochs share all structure their commits did not rebuild, so bytes per
// epoch is the interesting column — it should sit near the commit's
// rebuilt-tree sizes, orders of magnitude under size-of-dataset.
func retentionSweep(n int, seed uint64, seedPts geom.Points, domain geom.Box, batchB int) {
	const dim = 2
	const commits = 512
	fmt.Println("\n--- retention overhead: identical churn, swept RetainEpochs ---")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "retain\tepochs held\tretained MB\tKB/epoch")
	for _, retain := range []int{0, 64, 256} {
		e := engine.New(dim, engine.Options{Shards: 4, RetainEpochs: retain})
		if res := e.Insert(seedPts); res.Err != nil {
			fmt.Fprintf(os.Stderr, "mvccbench: %v\n", res.Err)
			os.Exit(1)
		}
		r := rng.NewXoshiro256(seed + 71)
		region := writerRegion(0, domain)
		var prev geom.Points
		for round := 0; round < commits; round++ {
			batch := geom.NewPoints(batchB, dim)
			for j := 0; j < batchB; j++ {
				p := batch.At(j)
				for c := range p {
					p[c] = region.Min[c] + r.Float64()*(region.Max[c]-region.Min[c])
				}
			}
			if res := e.Update(batch, prev); res.Err != nil {
				fmt.Fprintf(os.Stderr, "mvccbench: %v\n", res.Err)
				os.Exit(1)
			}
			prev = batch
		}
		st := e.Stats()
		perEpoch := "-"
		if st.RetainedEpochs > 1 {
			perEpoch = fmt.Sprintf("%.0f", float64(st.RetainedBytes)/float64(st.RetainedEpochs-1)/1e3)
		}
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%s\n", retain, st.RetainedEpochs, float64(st.RetainedBytes)/1e6, perEpoch)
		e.Close()
	}
	w.Flush()
	fmt.Println("\nRetained bytes are marginal: structure shared with the live version is")
	fmt.Println("charged to the live trees, so each held epoch costs only what its commit")
	fmt.Println("rebuilt. These rows are printed, not recorded — memory footprints do not")
	fmt.Println("scale with machine speed, so they have no place in the compare gate.")
}
