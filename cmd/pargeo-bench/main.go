// Command pargeo-bench regenerates every table and figure of the ParGeo
// paper's evaluation (§6) on the current machine:
//
//	pargeo-bench -experiment table1          # Table 1: runtimes + self-relative speedups
//	pargeo-bench -experiment fig8            # 2D convex hull across data sets
//	pargeo-bench -experiment fig9            # 3D convex hull across data sets
//	pargeo-bench -experiment fig10           # smallest enclosing ball across data sets
//	pargeo-bench -experiment fig11           # BDL-tree throughput vs threads
//	pargeo-bench -experiment fig12           # reservation overhead counters
//	pargeo-bench -experiment fig14           # k-NN throughput vs k on incrementally built trees
//	pargeo-bench -experiment hullstats       # §6.1 pseudohull pruning statistics
//	pargeo-bench -experiment sebstats        # §6.2 sampling-phase statistics
//	pargeo-bench -experiment zdcompare       # §6.3 BDL-tree vs Zd-tree
//	pargeo-bench -experiment engine          # mixed read/write serving throughput
//	pargeo-bench -experiment serve           # network layer: open-loop tail latency + client batching
//	pargeo-bench -experiment overload        # admission control: goodput + tails at 0.5-2x saturation
//	pargeo-bench -experiment wal             # WAL durability overhead + recovery time
//	pargeo-bench -experiment mvcc            # MVCC retention: analytics-vs-writer interference + memory
//	pargeo-bench -experiment kdtree          # kd-tree Build/k-NN/range microbenchmarks
//	pargeo-bench -experiment all
//
// The paper's experiments use 10M–100M points on a 36-core machine; -n
// scales the base data-set size (default 200000) so the suite runs
// anywhere. Shapes (which algorithm wins, crossover behavior) reproduce;
// absolute times depend on the host.
//
// -json <path> additionally writes the collected measurements as a
// machine-readable document, which is how the repo's committed
// BENCH_*.json perf-trajectory files are produced:
//
//	pargeo-bench -experiment kdtree -n 100000 -json BENCH_kdtree.json
//	pargeo-bench -experiment engine -n 100000 -shards 1,2,4 -json BENCH_engine.json
//	pargeo-bench -experiment wal -n 100000 -json BENCH_wal.json
//
// The engine experiment sweeps the Morton shard count (-shards) and the
// per-configuration measurement window (-measure).
//
// Compare mode turns two such documents into a benchmark-regression gate
// (exit 1 on a localized regression; see compare.go for the
// median-normalization that makes cross-machine comparisons meaningful):
//
//	pargeo-bench -compare BENCH_kdtree.json fresh.json -tolerance 0.35
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

var (
	flagExperiment = flag.String("experiment", "all", "experiment to run: table1|fig8|fig9|fig10|fig11|fig12|fig14|hullstats|sebstats|zdcompare|engine|serve|overload|wal|mvcc|kdtree|all")
	flagN          = flag.Int("n", 200000, "base data-set size (paper: 10M)")
	flagThreads    = flag.String("threads", "", "comma-separated thread counts for scaling experiments (default 1,2,4,...,NumCPU)")
	flagSeed       = flag.Uint64("seed", 42, "data-generation seed")
	flagVerify     = flag.Bool("verify", false, "cross-check results between implementations where cheap")
	flagJSON       = flag.String("json", "", "write machine-readable results to this path")
	flagShards     = flag.String("shards", "1,2,4", "comma-separated engine shard counts for the engine experiment sweep")
	flagMeasure    = flag.Duration("measure", 1500*time.Millisecond, "measurement window per engine-experiment configuration")
	flagOverAssert = flag.Bool("overload-assert", false, "overload experiment: exit 1 unless goodput at 2x saturation stays within 80% of the best observed and the successful-read p99 stays bounded")
	flagMVCCAssert = flag.Bool("mvcc-assert", false, "mvcc experiment: exit 1 unless writer throughput under concurrent pinned analytics stays >= 70% of the no-analytics baseline")
	flagRebalance  = flag.String("rebalance", "off,on", "comma-separated rebalancer modes (off,on) for the engine experiment's drifting hot-spot sweep")
)

func main() {
	// Compare mode is a subcommand with its own argument shape
	// (`pargeo-bench -compare old.json new.json -tolerance 0.35`), handled
	// before the experiment flags.
	if len(os.Args) >= 2 && (os.Args[1] == "-compare" || os.Args[1] == "--compare") {
		os.Exit(runCompare(os.Args[2:]))
	}
	flag.Parse()
	threads := parseThreads(*flagThreads)
	fmt.Printf("pargeo-bench: n=%d, host CPUs=%d, threads=%v\n\n", *flagN, runtime.NumCPU(), threads)
	matched := false
	run := func(name string, f func()) {
		if *flagExperiment == name || *flagExperiment == "all" {
			matched = true
			start := time.Now()
			f()
			fmt.Printf("[%s completed in %.1fs]\n\n", name, time.Since(start).Seconds())
		}
	}
	run("table1", func() { table1(*flagN, *flagSeed) })
	run("fig8", func() { fig8(*flagN, *flagSeed) })
	run("fig9", func() { fig9(*flagN, *flagSeed) })
	run("fig10", func() { fig10(*flagN, *flagSeed) })
	run("fig11", func() { fig11(*flagN, *flagSeed, threads) })
	run("fig12", func() { fig12(*flagN, *flagSeed) })
	run("fig14", func() { fig14(*flagN, *flagSeed) })
	run("hullstats", func() { hullStats(*flagN, *flagSeed) })
	run("sebstats", func() { sebStats(*flagN, *flagSeed) })
	run("zdcompare", func() { zdCompare(*flagN, *flagSeed) })
	run("engine", func() {
		engineBench(*flagN, *flagSeed, parseThreads(*flagShards), *flagMeasure)
		engineDriftBench(*flagN, *flagSeed, parseRebalance(*flagRebalance))
	})
	run("serve", func() { serveBench(*flagN, *flagSeed, *flagMeasure) })
	run("overload", func() { overloadBench(*flagN, *flagSeed, *flagMeasure, *flagOverAssert) })
	run("wal", func() { walBench(*flagN, *flagSeed, *flagMeasure) })
	run("mvcc", func() { mvccBench(*flagN, *flagSeed, *flagMVCCAssert) })
	run("kdtree", func() { kdBench(*flagN, *flagSeed) })
	if !matched {
		// A typo must not silently run nothing (and, with -json, clobber a
		// committed BENCH_*.json with an empty document).
		fmt.Fprintf(os.Stderr, "unknown experiment %q (see -h for the list)\n", *flagExperiment)
		os.Exit(2)
	}
	if *flagJSON != "" {
		if err := writeJSON(*flagJSON, *flagN, *flagSeed); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *flagJSON, err)
			os.Exit(1)
		}
	}
}

func parseThreads(s string) []int {
	if s == "" {
		max := runtime.NumCPU()
		var out []int
		for p := 1; p < max; p *= 2 {
			out = append(out, p)
		}
		return append(out, max)
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad thread count %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// parseRebalance parses the -rebalance sweep list ("off,on") into bools.
func parseRebalance(s string) []bool {
	var out []bool
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "off":
			out = append(out, false)
		case "on":
			out = append(out, true)
		default:
			fmt.Fprintf(os.Stderr, "bad rebalance mode %q (want off or on)\n", part)
			os.Exit(2)
		}
	}
	return out
}

// timeIt runs f once and returns elapsed seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// withThreads runs f under a specific GOMAXPROCS and restores the setting.
func withThreads(p int, f func()) float64 {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	return timeIt(f)
}

func ms(sec float64) string { return fmt.Sprintf("%.1f", sec*1000) }
