package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"pargeo/internal/bdltree"
	"pargeo/internal/engine"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/rng"
)

// engineBench measures the serving path: mixed read/write throughput of the
// concurrent query engine under w writer goroutines issuing small batched
// updates and r reader goroutines issuing single-point k-NN and range
// queries, swept over the engine's Morton shard count. Writers churn
// disjoint quadrant regions of the domain, so with S > 1 their commit
// streams land on different shards and commit in parallel — the sweep is
// the multi-writer scaling axis the sharded engine adds. The mutex
// baseline guards one BDL-tree with a single lock for both queries and
// updates — what a caller would write without the engine — so the table
// shows what snapshot isolation, query grouping, and sharding buy. Every
// row is recorded for -json output; this experiment generates the
// committed BENCH_engine.json.
func engineBench(n int, seed uint64, shardCounts []int, measure time.Duration) {
	fmt.Println("=== engine: mixed read/write serving throughput (3D uniform) ===")
	const (
		dim      = 3
		k        = 5
		updBatch = 512
	)
	configs := []struct{ writers, readers int }{
		{1, 4},
		{2, 8},
		{4, 8},
		{8, 16},
	}

	// The seeded domain: the founding insertion fixes world box and shard
	// boundaries, and writers derive their churn regions from its extent.
	seedPts := generators.UniformCube(n, dim, seed)
	domain := geom.BoundingBoxAll(seedPts)

	type target struct {
		name  string
		setup func() (query func(q []float64), update func(ins, del geom.Points))
	}
	var targets []target
	for _, s := range shardCounts {
		s := s
		targets = append(targets, target{fmt.Sprintf("engine-s%d", s), func() (func([]float64), func(ins, del geom.Points)) {
			e := engine.New(dim, engine.Options{Shards: s})
			e.Insert(seedPts)
			return func(q []float64) { e.KNN(q, k) },
				func(ins, del geom.Points) { e.Update(ins, del) }
		}})
	}
	targets = append(targets, target{"mutex-bdl", func() (func([]float64), func(ins, del geom.Points)) {
		var mu sync.Mutex
		tr := bdltree.New(dim, bdltree.Options{})
		tr.Insert(seedPts)
		return func(q []float64) {
				mu.Lock()
				tr.KNN(geom.Points{Data: q, Dim: dim}, k, nil)
				mu.Unlock()
			},
			func(ins, del geom.Points) {
				mu.Lock()
				if del.Len() > 0 {
					tr.Delete(del)
				}
				tr.Insert(ins)
				mu.Unlock()
			}
	}})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "target\twriters\treaders\tqueries/s\tupdates/s")
	for _, tg := range targets {
		for _, cfg := range configs {
			query, update := tg.setup()
			queries, updates := runMixed(cfg.writers, cfg.readers, measure, domain, seed, updBatch, query, update)
			secs := measure.Seconds()
			qps := float64(queries) / secs
			ups := float64(updates) / secs
			fmt.Fprintf(w, "%s\t%d\t%d\t%.3g\t%.3g\n",
				tg.name, cfg.writers, cfg.readers, qps, ups)
			record(BenchRecord{
				Experiment: "engine",
				Name:       fmt.Sprintf("%s/w=%d/r=%d/queries", tg.name, cfg.writers, cfg.readers),
				N:          n, Dim: dim, Seconds: secs, OpsPerSec: qps,
			})
			record(BenchRecord{
				Experiment: "engine",
				Name:       fmt.Sprintf("%s/w=%d/r=%d/updates", tg.name, cfg.writers, cfg.readers),
				N:          n, Dim: dim, Seconds: secs, OpsPerSec: ups,
			})
		}
	}
	w.Flush()
	fmt.Println("\nEach update inserts a fresh batch of", updBatch, "points into the writer's")
	fmt.Println("quadrant and deletes the previous one (dataset stationary; both update")
	fmt.Println("halves exercised). Engine readers never block on writers (snapshot")
	fmt.Println("isolation), concurrent queries group into shared data-parallel passes,")
	fmt.Println("and with S > 1 writers in disjoint quadrants commit on disjoint shards")
	fmt.Println("in parallel. Update scaling with S needs real cores: on a single-core")
	fmt.Println("host the shard commit streams time-slice one CPU.")
}

// writerRegion returns writer i's churn region: one cell of the 2x2
// quadrant grid over the domain's LAST two dimensions — the ones holding a
// Morton code's most significant bits, so the quantile boundaries of a
// uniform domain separate exactly these quadrants and distinct quadrants
// land on distinct shards for S >= 4.
func writerRegion(i int, domain geom.Box) geom.Box {
	b := geom.Box{Min: append([]float64(nil), domain.Min...), Max: append([]float64(nil), domain.Max...)}
	for j := 0; j < 2 && j < len(b.Min); j++ {
		d := len(b.Min) - 1 - j
		mid := (domain.Min[d] + domain.Max[d]) / 2
		if (i>>j)&1 == 0 {
			b.Max[d] = mid
		} else {
			b.Min[d] = mid
		}
	}
	return b
}

// runMixed drives the query/update closures from the requested goroutine
// counts for the measurement window and returns completed operation counts.
func runMixed(writers, readers int, d time.Duration, domain geom.Box, seed uint64,
	updBatch int, query func([]float64), update func(ins, del geom.Points)) (queries, updates int64) {
	dim := len(domain.Min)
	var stop atomic.Bool
	var q, u atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each writer churns its own quadrant so updates from different
			// writers land on different shards: every round inserts a fresh
			// batch and deletes the previous one, keeping the dataset
			// stationary and exercising both halves of the update path.
			region := writerRegion(i, domain)
			r := rng.NewXoshiro256(seed + uint64(i)*1e6 + 17)
			var prev geom.Points
			for !stop.Load() {
				batch := geom.NewPoints(updBatch, dim)
				for j := 0; j < updBatch; j++ {
					p := batch.At(j)
					for c := range p {
						p[c] = region.Min[c] + r.Float64()*(region.Max[c]-region.Min[c])
					}
				}
				update(batch, prev)
				prev = batch
				u.Add(1)
			}
		}()
	}
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.NewXoshiro256(seed + uint64(i)*7919)
			probe := make([]float64, dim)
			for !stop.Load() {
				for c := range probe {
					probe[c] = domain.Min[c] + r.Float64()*(domain.Max[c]-domain.Min[c])
				}
				query(probe)
				q.Add(1)
			}
		}()
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return q.Load(), u.Load()
}
