package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"pargeo/internal/bdltree"
	"pargeo/internal/engine"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/rng"
)

// engineBench measures the serving path: mixed read/write throughput of the
// concurrent query engine under w writer goroutines issuing small batched
// updates and r reader goroutines issuing single-point k-NN and range
// queries. The mutex baseline guards the same BDL-tree with one lock for
// both queries and updates — what a caller would write without the engine —
// so the table shows what snapshot isolation plus query grouping buys.
func engineBench(n int, seed uint64) {
	fmt.Println("=== engine: mixed read/write serving throughput (3D uniform) ===")
	const (
		dim      = 3
		k        = 5
		updBatch = 512
		measure  = 1500 * time.Millisecond
	)
	configs := []struct{ writers, readers int }{
		{1, 4},
		{1, 8},
		{2, 8},
		{2, 16},
	}

	type target struct {
		name  string
		setup func() (query func(q []float64), update func(ins, del geom.Points))
	}
	targets := []target{
		{"engine", func() (func([]float64), func(ins, del geom.Points)) {
			e := engine.New(dim, engine.Options{})
			e.Insert(generators.UniformCube(n, dim, seed))
			return func(q []float64) { e.KNN(q, k) },
				func(ins, del geom.Points) { e.Update(ins, del) }
		}},
		{"mutex-bdl", func() (func([]float64), func(ins, del geom.Points)) {
			var mu sync.Mutex
			tr := bdltree.New(dim, bdltree.Options{})
			tr.Insert(generators.UniformCube(n, dim, seed))
			return func(q []float64) {
					mu.Lock()
					tr.KNN(geom.Points{Data: q, Dim: dim}, k, nil)
					mu.Unlock()
				},
				func(ins, del geom.Points) {
					mu.Lock()
					if del.Len() > 0 {
						tr.Delete(del)
					}
					tr.Insert(ins)
					mu.Unlock()
				}
		}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "target\twriters\treaders\tqueries/s\tupdates/s")
	for _, tg := range targets {
		for _, cfg := range configs {
			query, update := tg.setup()
			queries, updates := runMixed(cfg.writers, cfg.readers, measure, dim, seed, updBatch, query, update)
			secs := measure.Seconds()
			fmt.Fprintf(w, "%s\t%d\t%d\t%.3g\t%.3g\n",
				tg.name, cfg.writers, cfg.readers,
				float64(queries)/secs, float64(updates)/secs)
		}
	}
	w.Flush()
	fmt.Println("\nEach update inserts a fresh batch of", updBatch, "points and deletes the")
	fmt.Println("previous one (dataset stationary; both update halves exercised).")
	fmt.Println("Engine readers never block on writers (snapshot isolation) and")
	fmt.Println("concurrent queries group into shared data-parallel passes.")
}

// runMixed drives the query/update closures from the requested goroutine
// counts for the measurement window and returns completed operation counts.
func runMixed(writers, readers int, d time.Duration, dim int, seed uint64,
	updBatch int, query func([]float64), update func(ins, del geom.Points)) (queries, updates int64) {
	var stop atomic.Bool
	var q, u atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each writer churns its own private region so updates never
			// collide across writers: every round inserts a fresh batch and
			// deletes the previous one, keeping the dataset stationary and
			// exercising both halves of the update path.
			var prev geom.Points
			for it := 0; !stop.Load(); it++ {
				batch := generators.UniformCube(updBatch, dim, seed+uint64(i)*1e6+uint64(it))
				for j := 0; j < batch.Len(); j++ {
					batch.At(j)[0] += 1e7 * float64(i+1) // shift into the writer's region
				}
				update(batch, prev)
				prev = batch
				u.Add(1)
			}
		}()
	}
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.NewXoshiro256(seed + uint64(i)*7919)
			probe := make([]float64, dim)
			for !stop.Load() {
				for c := range probe {
					probe[c] = r.Float64() * 100
				}
				query(probe)
				q.Add(1)
			}
		}()
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return q.Load(), u.Load()
}
