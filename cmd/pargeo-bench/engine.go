package main

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"pargeo/internal/bdltree"
	"pargeo/internal/engine"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/rng"
)

// engineBench measures the serving path: mixed read/write throughput of the
// concurrent query engine under w writer goroutines issuing small batched
// updates and r reader goroutines issuing single-point k-NN and range
// queries, swept over the engine's Morton shard count. Writers churn
// disjoint quadrant regions of the domain, so with S > 1 their commit
// streams land on different shards and commit in parallel — the sweep is
// the multi-writer scaling axis the sharded engine adds. The mutex
// baseline guards one BDL-tree with a single lock for both queries and
// updates — what a caller would write without the engine — so the table
// shows what snapshot isolation, query grouping, and sharding buy. Every
// row is recorded for -json output; this experiment generates the
// committed BENCH_engine.json.
func engineBench(n int, seed uint64, shardCounts []int, measure time.Duration) {
	fmt.Println("=== engine: mixed read/write serving throughput (3D uniform) ===")
	const (
		dim      = 3
		k        = 5
		updBatch = 512
	)
	configs := []struct{ writers, readers int }{
		{1, 4},
		{2, 8},
		{4, 8},
		{8, 16},
	}

	// The seeded domain: the founding insertion fixes world box and shard
	// boundaries, and writers derive their churn regions from its extent.
	seedPts := generators.UniformCube(n, dim, seed)
	domain := geom.BoundingBoxAll(seedPts)

	type target struct {
		name  string
		setup func() (query func(q []float64), update func(ins, del geom.Points))
	}
	var targets []target
	for _, s := range shardCounts {
		s := s
		targets = append(targets, target{fmt.Sprintf("engine-s%d", s), func() (func([]float64), func(ins, del geom.Points)) {
			e := engine.New(dim, engine.Options{Shards: s})
			e.Insert(seedPts)
			return func(q []float64) { e.KNN(q, k) },
				func(ins, del geom.Points) { e.Update(ins, del) }
		}})
	}
	targets = append(targets, target{"mutex-bdl", func() (func([]float64), func(ins, del geom.Points)) {
		var mu sync.Mutex
		tr := bdltree.New(dim, bdltree.Options{})
		tr.Insert(seedPts)
		return func(q []float64) {
				mu.Lock()
				tr.KNN(geom.Points{Data: q, Dim: dim}, k, nil)
				mu.Unlock()
			},
			func(ins, del geom.Points) {
				mu.Lock()
				if del.Len() > 0 {
					tr.Delete(del)
				}
				tr.Insert(ins)
				mu.Unlock()
			}
	}})

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "target\twriters\treaders\tqueries/s\tupdates/s")
	for _, tg := range targets {
		for _, cfg := range configs {
			query, update := tg.setup()
			qps, ups := runMixed(cfg.writers, cfg.readers, measure, domain, seed, updBatch, query, update)
			secs := (time.Duration(mixedWindows) * measure).Seconds()
			fmt.Fprintf(w, "%s\t%d\t%d\t%.3g\t%.3g\n",
				tg.name, cfg.writers, cfg.readers, qps, ups)
			// The mutex baseline is narrative context, not gated code: its
			// throughput is dominated by lock-fairness luck (bimodal window
			// to window), and a regression in it would say nothing about
			// this repository. Keep it out of the recorded document so the
			// CI gate only tracks the engine's own rows.
			if tg.name == "mutex-bdl" {
				continue
			}
			record(BenchRecord{
				Experiment: "engine",
				Name:       fmt.Sprintf("%s/w=%d/r=%d/queries", tg.name, cfg.writers, cfg.readers),
				N:          n, Dim: dim, Seconds: secs, OpsPerSec: qps,
			})
			record(BenchRecord{
				Experiment: "engine",
				Name:       fmt.Sprintf("%s/w=%d/r=%d/updates", tg.name, cfg.writers, cfg.readers),
				N:          n, Dim: dim, Seconds: secs, OpsPerSec: ups,
			})
		}
	}
	w.Flush()
	fmt.Println("\nEach update inserts a fresh batch of", updBatch, "points into the writer's")
	fmt.Println("quadrant and deletes the previous one (dataset stationary; both update")
	fmt.Println("halves exercised). Engine readers never block on writers (snapshot")
	fmt.Println("isolation), concurrent queries group into shared data-parallel passes,")
	fmt.Println("and with S > 1 writers in disjoint quadrants commit on disjoint shards")
	fmt.Println("in parallel. Update scaling with S needs real cores: on a single-core")
	fmt.Println("host the shard commit streams time-slice one CPU.")
}

// engineDriftBench measures the rebalancer's reason to exist: a cold-start
// mis-founded partition under a drifting hot-spot serving load. The engine
// founds on a tiny unrepresentative seed huddled in the domain's min
// corner, so when the real point mass arrives nearly all of it lies beyond
// the founding world box and morton.Encode clamps it into the max-corner
// boundary cell: under the frozen partition (rebal=off) the whole data set
// — and every subsequent write — funnels into ONE edge shard, collapsing
// S=4 to a single commit stream over one big tree. With -rebalance on, the
// out-of-world drift counter trips, the partition is rebuilt under a
// widened world, and the slowly drifting per-quadrant churn stays spread
// over all S shards (write-weighted splits track it between repartitions).
// Both modes are recorded into the -json document (committed as
// BENCH_engine.json), which the CI regression gate replays; the headline
// comparison is updates/s at 8 writers.
func engineDriftBench(n int, seed uint64, rebalModes []bool) {
	fmt.Println("=== engine: drifting hot-spot + cold-start mis-founding, rebalancer sweep (2D, S=4) ===")
	const (
		dim    = 2
		shards = 4
		batchB = 128
		seedN  = 2048
	)
	bulk := generators.UniformCube(n, dim, seed)
	domain := geom.BoundingBoxAll(bulk)
	ext := domain.Max[0] - domain.Min[0]
	// The mis-founding seed: a dense huddle in the min corner, 1/16th of
	// the domain's extent per side.
	seedPts := geom.NewPoints(seedN, dim)
	r0 := rng.NewXoshiro256(seed + 13)
	for i := 0; i < seedN; i++ {
		p := seedPts.At(i)
		for c := range p {
			p[c] = domain.Min[c] + r0.Float64()*ext/16
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "target\twriters\treaders\tqueries/s\tupdates/s\tmigrations\tshard sizes")
	for _, cfg := range []struct{ writers, readers int }{{8, 8}} {
		for _, rebal := range rebalModes {
			mode := "off"
			if rebal {
				mode = "on"
			}
			e := engine.New(dim, engine.Options{Shards: shards, Rebalance: rebal})
			e.Insert(seedPts)
			// The real mass arrives in service-sized batches after the
			// partition has already frozen around the seed.
			for lo := 0; lo < bulk.Len(); lo += 8192 {
				hi := lo + 8192
				if hi > bulk.Len() {
					hi = bulk.Len()
				}
				e.Insert(bulk.Slice(lo, hi))
			}
			// Cold-start settle, identical in both modes: gives the
			// background rebalancer (when enabled) its one bulk-arrival
			// repartition before the steady-state window opens.
			time.Sleep(150 * time.Millisecond)
			qps, ups := runDrift(e, cfg.writers, cfg.readers, domain, seed, batchB)
			sizes := e.Snapshot().ShardSizes()
			migrations := e.Rebalances()
			e.Close()
			secs := (driftWindow * driftWindows).Seconds()
			name := fmt.Sprintf("drift-s%d-rebal=%s", shards, mode)
			fmt.Fprintf(w, "%s\t%d\t%d\t%.3g\t%.3g\t%d\t%v\n",
				name, cfg.writers, cfg.readers, qps, ups, migrations, sizes)
			record(BenchRecord{
				Experiment: "engine",
				Name:       fmt.Sprintf("%s/w=%d/r=%d/queries", name, cfg.writers, cfg.readers),
				N:          n, Dim: dim, Seconds: secs, OpsPerSec: qps,
			})
			record(BenchRecord{
				Experiment: "engine",
				Name:       fmt.Sprintf("%s/w=%d/r=%d/updates", name, cfg.writers, cfg.readers),
				N:          n, Dim: dim, Seconds: secs, OpsPerSec: ups,
			})
		}
	}
	w.Flush()
	fmt.Println("\nThe engine founds on a", seedN, "-point seed in the domain's corner; the")
	fmt.Println("real", n, "-point mass then arrives beyond the founding box and — frozen —")
	fmt.Println("aliases into one boundary shard (see the shard-size vectors). Writers")
	fmt.Println("churn per-quadrant", batchB, "-point batches whose regions drift slowly")
	fmt.Println("across the domain; readers issue k-NN probes throughout. The rebalancer")
	fmt.Println("repartitions under a widened world at the bulk arrival and keeps the")
	fmt.Println("drifting churn spread with write-weighted splits thereafter.")
}

// Drift measurement protocol: a fixed number of fixed-length windows with
// the median taken per metric. Fixed (rather than -measure-scaled) windows
// keep the committed baseline and the CI regression gate's fresh runs on
// the same protocol — the drift workload is not perfectly stationary, so
// records from different window lengths would not be comparable — and the
// median discards the odd window distorted by a GC pause or a migration.
const (
	driftWindows = 5
	driftWindow  = time.Second
)

// runDrift drives the drifting hot-spot serving load: writer i churns a
// per-quadrant region that drifts diagonally by ext/20000 per round (each
// round commits a fresh batch and deletes the previous one in one atomic
// update), while readers issue k-NN probes across the whole domain.
// Returns median per-window throughputs (queries/s, updates/s).
func runDrift(e *engine.Engine, writers, readers int, domain geom.Box,
	seed uint64, batchB int) (qps, ups float64) {
	const k = 5
	dim := len(domain.Min)
	ext := domain.Max[0] - domain.Min[0]
	var stop atomic.Bool
	var q, u atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.NewXoshiro256(seed + uint64(i)*1e6 + 29)
			var prev geom.Points
			for round := 0; !stop.Load(); round++ {
				region := writerRegion(i, domain)
				off := float64(round) * ext / 20000
				batch := geom.NewPoints(batchB, dim)
				for j := 0; j < batchB; j++ {
					p := batch.At(j)
					for c := range p {
						p[c] = region.Min[c] + off + r.Float64()*(region.Max[c]-region.Min[c])
					}
				}
				e.Update(batch, prev)
				prev = batch
				u.Add(1)
			}
		}()
	}
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.NewXoshiro256(seed + uint64(i)*7919 + 3)
			probe := make([]float64, dim)
			for !stop.Load() {
				for c := range probe {
					probe[c] = domain.Min[c] + r.Float64()*(domain.Max[c]-domain.Min[c])
				}
				e.KNN(probe, k)
				q.Add(1)
			}
		}()
	}
	var qd, ud []float64
	for w := 0; w < driftWindows; w++ {
		q0, u0 := q.Load(), u.Load()
		time.Sleep(driftWindow)
		qd = append(qd, float64(q.Load()-q0)/driftWindow.Seconds())
		ud = append(ud, float64(u.Load()-u0)/driftWindow.Seconds())
	}
	stop.Store(true)
	wg.Wait()
	sort.Float64s(qd)
	sort.Float64s(ud)
	return qd[driftWindows/2], ud[driftWindows/2]
}

// writerRegion returns writer i's churn region: one cell of the 2x2
// quadrant grid over the domain's LAST two dimensions — the ones holding a
// Morton code's most significant bits, so the quantile boundaries of a
// uniform domain separate exactly these quadrants and distinct quadrants
// land on distinct shards for S >= 4.
func writerRegion(i int, domain geom.Box) geom.Box {
	b := geom.Box{Min: append([]float64(nil), domain.Min...), Max: append([]float64(nil), domain.Max...)}
	for j := 0; j < 2 && j < len(b.Min); j++ {
		d := len(b.Min) - 1 - j
		mid := (domain.Min[d] + domain.Max[d]) / 2
		if (i>>j)&1 == 0 {
			b.Max[d] = mid
		} else {
			b.Min[d] = mid
		}
	}
	return b
}

// mixedWindows is the number of -measure-length windows each engine
// configuration is observed for; the per-window median is recorded. Like
// the drift experiment's protocol, the median discards windows distorted
// by a GC pause, warmup deletes, or lock-fairness luck (the mutex baseline
// at few writers is especially jittery window to window).
const mixedWindows = 3

// runMixed drives the query/update closures from the requested goroutine
// counts and returns median per-window throughputs (queries/s, updates/s).
func runMixed(writers, readers int, d time.Duration, domain geom.Box, seed uint64,
	updBatch int, query func([]float64), update func(ins, del geom.Points)) (qps, ups float64) {
	dim := len(domain.Min)
	var stop atomic.Bool
	var q, u atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each writer churns its own quadrant so updates from different
			// writers land on different shards: every round inserts a fresh
			// batch and deletes the previous one, keeping the dataset
			// stationary and exercising both halves of the update path.
			region := writerRegion(i, domain)
			r := rng.NewXoshiro256(seed + uint64(i)*1e6 + 17)
			var prev geom.Points
			for !stop.Load() {
				batch := geom.NewPoints(updBatch, dim)
				for j := 0; j < updBatch; j++ {
					p := batch.At(j)
					for c := range p {
						p[c] = region.Min[c] + r.Float64()*(region.Max[c]-region.Min[c])
					}
				}
				update(batch, prev)
				prev = batch
				u.Add(1)
			}
		}()
	}
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.NewXoshiro256(seed + uint64(i)*7919)
			probe := make([]float64, dim)
			for !stop.Load() {
				for c := range probe {
					probe[c] = domain.Min[c] + r.Float64()*(domain.Max[c]-domain.Min[c])
				}
				query(probe)
				q.Add(1)
			}
		}()
	}
	var qd, ud []float64
	for w := 0; w < mixedWindows; w++ {
		q0, u0 := q.Load(), u.Load()
		time.Sleep(d)
		qd = append(qd, float64(q.Load()-q0)/d.Seconds())
		ud = append(ud, float64(u.Load()-u0)/d.Seconds())
	}
	stop.Store(true)
	wg.Wait()
	sort.Float64s(qd)
	sort.Float64s(ud)
	return qd[mixedWindows/2], ud[mixedWindows/2]
}
