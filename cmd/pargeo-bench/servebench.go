package main

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"pargeo/client"
	"pargeo/internal/engine"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/server"
)

// serveBench measures the network serving layer end to end on a loopback
// TCP connection, two ways:
//
//   - An OPEN-LOOP tail-latency harness: requests arrive on fixed Poisson
//     schedules (one per op class, well below saturation) and each
//     latency is measured from the request's SCHEDULED arrival, not its
//     send time — so server-side queueing is charged to the requests
//     that suffered it instead of silently thinning the arrival stream
//     (no coordinated omission). Each class runs three independent
//     windows and every percentile is the MEDIAN across windows: a p999
//     from one window is decided by a handful of samples and one GC or
//     scheduler hiccup can move it 3×, which would make the compare
//     gate flake — the median of three is what makes the tail rows
//     stable enough to gate. p50/p99/p999 per class are recorded for
//     BENCH_serve.json; a regression in any percentile trips the
//     compare gate like a throughput loss would.
//
//   - A CLOSED-LOOP batched-vs-unbatched comparison at 16 concurrent
//     callers: the same workload once through one batching client
//     (concurrent calls coalesce into merged wire requests) and once
//     through 16 independent unbatched connections. The ratio is the
//     measured value of client-side flat combining.
//
// The engine runs in-memory here: the serve experiment gates the network
// layer (framing, batching, per-request scheduling), and an fsync in the
// loop would measure the host's storage instead. Durability overhead has
// its own experiment (wal).
func serveBench(n int, seed uint64, measure time.Duration) {
	fmt.Println("=== serve: network serving layer, open-loop latency + batching (2D uniform) ===")
	const (
		dim      = 2
		knnK     = 8
		knnRate  = 3000.0 // arrivals/s, well under loopback saturation
		updRate  = 750.0
		openReps = 3 // independent windows per class; percentiles are medians
	)
	eng := engine.New(dim, engine.Options{Shards: 4})
	seedPts := generators.UniformCube(n, dim, seed)
	if res := eng.Insert(seedPts); res.Err != nil {
		fmt.Fprintf(os.Stderr, "servebench: %v\n", res.Err)
		os.Exit(1)
	}
	domain := geom.BoundingBoxAll(seedPts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "servebench: %v\n", err)
		os.Exit(1)
	}
	srv := server.New(eng, dim, ln)
	go srv.Serve() //nolint:errcheck // exits nil on Shutdown
	defer func() { srv.Shutdown(); eng.Close() }()
	addr := ln.Addr().String()

	c, err := client.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "servebench: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	// --- open loop ------------------------------------------------------
	span := func(rng *rand.Rand) []float64 {
		p := make([]float64, dim)
		for d := range p {
			p[d] = domain.Min[d] + rng.Float64()*(domain.Max[d]-domain.Min[d])
		}
		return p
	}
	// Both classes run concurrently within each window (the mixed load is
	// the point), and each window's percentiles are computed separately.
	var wg sync.WaitGroup
	knnLat := make([][]float64, openReps)
	updLat := make([][]float64, openReps)
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(int64(seed)))
		for rep := 0; rep < openReps; rep++ {
			knnLat[rep] = openLoop(knnRate, measure, rng, func(r *rand.Rand) error {
				_, err := c.KNN(span(r), knnK)
				return err
			})
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(int64(seed) + 1))
		for rep := 0; rep < openReps; rep++ {
			updLat[rep] = openLoop(updRate, measure, rng, func(r *rand.Rand) error {
				res := c.Insert(geom.Points{Data: span(r), Dim: dim})
				return res.Err
			})
		}
	}()
	wg.Wait()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "class\trate/s\tsamples\tp50\tp99\tp999")
	for _, cl := range []struct {
		name string
		rate float64
		lat  [][]float64
	}{{"knn", knnRate, knnLat}, {"update", updRate, updLat}} {
		p50, p99, p999 := medianPctile(cl.lat, 50), medianPctile(cl.lat, 99), medianPctile(cl.lat, 99.9)
		samples := 0
		for _, rep := range cl.lat {
			samples += len(rep)
		}
		fmt.Fprintf(w, "%s\t%.0f\t%d\t%s\t%s\t%s\n", cl.name, cl.rate, samples,
			time.Duration(p50), time.Duration(p99), time.Duration(p999))
		for _, p := range []struct {
			tag string
			ns  float64
		}{{"p50", p50}, {"p99", p99}, {"p999", p999}} {
			record(BenchRecord{
				Experiment: "serve", Name: fmt.Sprintf("open-%s-%s", cl.name, p.tag),
				N: n, Dim: dim, Seconds: measure.Seconds(), NsPerOp: p.ns,
			})
		}
	}
	w.Flush()

	// --- closed loop: batched vs unbatched at 16 concurrent callers -----
	const callers = 16
	runClosed := func(clients []*client.Client) (knnOps, insOps float64) {
		var done sync.WaitGroup
		var knnN, insN int64
		var mu sync.Mutex
		stop := time.Now().Add(measure)
		for g := 0; g < callers; g++ {
			cc := clients[g%len(clients)]
			g := g
			done.Add(1)
			go func() {
				defer done.Done()
				rng := rand.New(rand.NewSource(int64(g) + 99))
				var kn, in int64
				for time.Now().Before(stop) {
					if _, err := cc.KNN(span(rng), knnK); err != nil {
						fmt.Fprintf(os.Stderr, "servebench: %v\n", err)
						os.Exit(1)
					}
					kn++
					if g%4 == 0 { // 4 of 16 callers also write
						if res := cc.Insert(geom.Points{Data: span(rng), Dim: dim}); res.Err != nil {
							fmt.Fprintf(os.Stderr, "servebench: %v\n", res.Err)
							os.Exit(1)
						}
						in++
					}
				}
				mu.Lock()
				knnN += kn
				insN += in
				mu.Unlock()
			}()
		}
		done.Wait()
		return float64(knnN) / measure.Seconds(), float64(insN) / measure.Seconds()
	}

	batchedKNN, batchedIns := runClosed([]*client.Client{c})
	unbatched := make([]*client.Client, callers)
	for i := range unbatched {
		uc, err := client.DialWith(addr, client.Options{NoBatch: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench: %v\n", err)
			os.Exit(1)
		}
		defer uc.Close()
		unbatched[i] = uc
	}
	unbatchedKNN, unbatchedIns := runClosed(unbatched)

	fmt.Printf("\nclosed loop, %d callers:\n", callers)
	fmt.Printf("  knn:    batched %.3g/s, unbatched %.3g/s (×%.2f)\n", batchedKNN, unbatchedKNN, batchedKNN/unbatchedKNN)
	fmt.Printf("  insert: batched %.3g/s, unbatched %.3g/s (×%.2f)\n", batchedIns, unbatchedIns, batchedIns/unbatchedIns)
	for _, r := range []struct {
		name string
		ops  float64
	}{
		{"closed-knn-batched", batchedKNN},
		{"closed-knn-unbatched", unbatchedKNN},
		{"closed-insert-batched", batchedIns},
		{"closed-insert-unbatched", unbatchedIns},
	} {
		record(BenchRecord{
			Experiment: "serve", Name: r.name, N: n, Dim: dim,
			Seconds: measure.Seconds(), OpsPerSec: r.ops,
		})
	}
}

// openLoop fires requests on a Poisson schedule of the given rate for
// the measure window and returns each request's latency (ns) measured
// from its scheduled arrival time. Requests run concurrently: a slow
// response delays nothing behind it, it only lengthens its own latency —
// and any queue it caused shows up in the latencies of the requests
// scheduled while it was in flight.
func openLoop(rate float64, measure time.Duration, rng *rand.Rand, fire func(*rand.Rand) error) []float64 {
	var scheduled []time.Duration
	for t := time.Duration(0); ; {
		t += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if t >= measure {
			break
		}
		scheduled = append(scheduled, t)
	}
	lat := make([]float64, len(scheduled))
	rngs := make([]*rand.Rand, len(scheduled))
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(rng.Int63()))
	}
	var wg sync.WaitGroup
	start := time.Now().Add(5 * time.Millisecond)
	for i, off := range scheduled {
		at := start.Add(off)
		time.Sleep(time.Until(at))
		wg.Add(1)
		go func(i int, at time.Time) {
			defer wg.Done()
			if err := fire(rngs[i]); err != nil {
				fmt.Fprintf(os.Stderr, "servebench: open-loop request: %v\n", err)
				os.Exit(1)
			}
			lat[i] = float64(time.Since(at).Nanoseconds())
		}(i, at)
	}
	wg.Wait()
	return lat
}

// medianPctile computes the p-th percentile inside each window and
// returns the median across windows.
func medianPctile(reps [][]float64, p float64) float64 {
	vals := make([]float64, 0, len(reps))
	for _, lat := range reps {
		vals = append(vals, pctile(lat, p))
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// pctile returns the p-th percentile (nearest-rank interpolation) of lat
// in place-sorted order.
func pctile(lat []float64, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Float64s(lat)
	idx := p / 100 * float64(len(lat)-1)
	lo := int(idx)
	if lo >= len(lat)-1 {
		return lat[len(lat)-1]
	}
	frac := idx - float64(lo)
	return lat[lo]*(1-frac) + lat[lo+1]*frac
}
