package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"
)

// Machine-readable benchmark output: every experiment that reports a
// measurement also records it here, and -json <path> writes the collected
// records so perf trajectories can be committed (BENCH_*.json) and diffed
// across revisions.

// BenchRecord is one measurement.
type BenchRecord struct {
	Experiment string  `json:"experiment"`
	Name       string  `json:"name"`
	N          int     `json:"n,omitempty"`       // data-set size
	Dim        int     `json:"dim,omitempty"`     // dimensionality
	Threads    int     `json:"threads,omitempty"` // GOMAXPROCS during the run
	Seconds    float64 `json:"seconds"`           // wall time of the run
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	OpsPerSec  float64 `json:"ops_per_sec,omitempty"` // throughput (ops = queries, points, ...)
}

// BenchDoc is the top-level JSON document.
type BenchDoc struct {
	Generated  string        `json:"generated"`
	GoVersion  string        `json:"go_version"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	BaseN      int           `json:"base_n"`
	Seed       uint64        `json:"seed"`
	Results    []BenchRecord `json:"results"`
}

var (
	benchMu      sync.Mutex
	benchResults []BenchRecord
)

// record appends one measurement to the JSON output (and is a no-op cost
// when -json is unset beyond the slice append).
func record(r BenchRecord) {
	if r.Threads == 0 {
		r.Threads = runtime.GOMAXPROCS(0)
	}
	benchMu.Lock()
	benchResults = append(benchResults, r)
	benchMu.Unlock()
}

// writeJSON dumps the collected records to path.
func writeJSON(path string, baseN int, seed uint64) error {
	benchMu.Lock()
	doc := BenchDoc{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BaseN:      baseN,
		Seed:       seed,
		Results:    benchResults,
	}
	benchMu.Unlock()
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark records to %s\n", len(doc.Results), path)
	return nil
}
