package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"pargeo/internal/core"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/hull2d"
	"pargeo/internal/hull3d"
)

// fig8 regenerates Figure 8: 2D convex hull running times (ms) across data
// sets and implementations. "CGAL" and "Qhull" are the optimized
// sequential baselines (monotone chain / sequential quickhull).
func fig8(n int, seed uint64) {
	fmt.Println("=== Figure 8: 2D convex hull running times (ms) ===")
	big := 10 * n // the paper's 100M sets are 10x its 10M sets
	sets := []struct {
		name string
		pts  geom.Points
	}{
		{"2D-IS", generators.InSphere(n, 2, seed)},
		{"2D-OS", generators.OnSphere(n, 2, seed+1)},
		{"2D-U", generators.UniformCube(n, 2, seed+2)},
		{"2D-OC", generators.OnCube(n, 2, seed+3)},
		{"2D-OS-big", generators.OnSphere(big, 2, seed+4)},
		{"2D-OC-big", generators.OnCube(big, 2, seed+5)},
	}
	algs := []struct {
		name string
		f    func(geom.Points) []int32
	}{
		{"CGAL(seq)", hull2d.MonotoneChain},
		{"Qhull(seq)", hull2d.SequentialQuickhull},
		{"RandInc", func(p geom.Points) []int32 { return hull2d.RandInc(p, seed) }},
		{"QuickHull", hull2d.Quickhull},
		{"DivideConquer", hull2d.DivideConquer},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "dataset(n)")
	for _, a := range algs {
		fmt.Fprintf(w, "\t%s", a.name)
	}
	fmt.Fprintln(w)
	for _, s := range sets {
		fmt.Fprintf(w, "%s(%d)", s.name, s.pts.Len())
		var ref []int32
		for ai, a := range algs {
			pts := s.pts
			t := timeIt(func() { ref = a.f(pts) })
			_ = ai
			fmt.Fprintf(w, "\t%s", ms(t))
		}
		fmt.Fprintf(w, "\t(hull=%d)\n", len(ref))
	}
	w.Flush()
	fmt.Println("\nPaper shape: DivideConquer fastest everywhere in 2D;")
	fmt.Println("parallel methods beat CGAL by 190-559x at 36 cores.")
}

// fig9 regenerates Figure 9: 3D convex hull running times across data sets
// (including the synthetic stand-ins for the Thai-statue and Dragon scans).
func fig9(n int, seed uint64) {
	fmt.Println("=== Figure 9: 3D convex hull running times (ms) ===")
	big := 10 * n
	sets := []struct {
		name string
		pts  geom.Points
	}{
		{"3D-IS", generators.InSphere(n, 3, seed)},
		{"3D-OS", generators.OnSphere(n, 3, seed+1)},
		{"3D-U", generators.UniformCube(n, 3, seed+2)},
		{"3D-OC", generators.OnCube(n, 3, seed+3)},
		{"3D-Thai*", generators.Statue(n/2, seed+4)},
		{"3D-Dragon*", generators.Dragon(n*36/100, seed+5)},
		{"3D-OS-big", generators.OnSphere(big, 3, seed+6)},
		{"3D-OC-big", generators.OnCube(big, 3, seed+7)},
	}
	algs := []struct {
		name string
		f    func(geom.Points) [][3]int32
	}{
		{"CGAL(seq)", func(p geom.Points) [][3]int32 { return hull3d.SequentialRandInc(p, seed) }},
		{"Qhull(seq)", hull3d.SequentialQuickhull},
		{"RandInc", func(p geom.Points) [][3]int32 { return hull3d.RandInc(p, seed) }},
		{"QuickHull", hull3d.Quickhull},
		{"DivideConquer", hull3d.DivideConquer},
		{"Pseudo", hull3d.Pseudo},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "dataset(n)")
	for _, a := range algs {
		fmt.Fprintf(w, "\t%s", a.name)
	}
	fmt.Fprintln(w)
	for _, s := range sets {
		fmt.Fprintf(w, "%s(%d)", s.name, s.pts.Len())
		var facets [][3]int32
		for _, a := range algs {
			pts := s.pts
			t := timeIt(func() { facets = a.f(pts) })
			fmt.Fprintf(w, "\t%s", ms(t))
		}
		fmt.Fprintf(w, "\t(facets=%d)\n", len(facets))
	}
	w.Flush()
	fmt.Println("\n(* synthetic scan surrogates; see DESIGN.md substitutions)")
	fmt.Println("Paper shape: DivideConquer and Pseudo fastest; Pseudo loses ground")
	fmt.Println("on large-output sets (IS/OS); RandInc/QuickHull lag on small-output")
	fmt.Println("sets from reservation contention.")
}

// fig12 regenerates Figure 12: the overhead of the reservation technique
// vs. the plain sequential quickhull, measured by visible points touched,
// visible facets touched, and single-thread running time.
func fig12(n int, seed uint64) {
	fmt.Println("=== Figure 12: reservation overhead (single thread) ===")
	sets := []struct {
		name string
		pts  geom.Points
	}{
		{"3D-IS", generators.InSphere(n, 3, seed)},
		{"3D-IC", generators.UniformCube(n, 3, seed+1)}, // in-cube = uniform
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\tmethod\t#points\t#facets\ttime(ms)\tsucc-rate")
	for _, s := range sets {
		var noRes, res core.Stats
		pts := s.pts
		tSeq := withThreads(1, func() { hull3d.SequentialQuickhullStats(pts, &noRes) })
		tRes := withThreads(1, func() { hull3d.QuickhullStats(pts, &res) })
		fmt.Fprintf(w, "%s\tno-reservation\t%d\t%d\t%s\t-\n",
			s.name, noRes.PointsTouched, noRes.FacetsTouched, ms(tSeq))
		rate := float64(res.Successes) / float64(res.Successes+res.Failures)
		fmt.Fprintf(w, "%s\treservation\t%d\t%d\t%s\t%.2f\n",
			s.name, res.PointsTouched, res.FacetsTouched, ms(tRes), rate)
	}
	w.Flush()
	fmt.Println("\nPaper shape: reservation touches a similar number of points/facets")
	fmt.Println("(sometimes fewer, from different insertion order) at a modest")
	fmt.Println("single-thread time overhead.")
}

// hullStats prints the §6.1 text statistics: pseudohull pruning survivor
// counts and hull output sizes for in-sphere vs uniform data.
func hullStats(n int, seed uint64) {
	fmt.Println("=== §6.1 statistics: pseudohull pruning and hull output sizes ===")
	sets := []struct {
		name string
		pts  geom.Points
	}{
		{"3D-IS", generators.InSphere(n, 3, seed)},
		{"3D-U", generators.UniformCube(n, 3, seed+1)},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\tn\tremaining-after-prune\thull-vertices")
	for _, s := range sets {
		facets, remaining := hull3d.PseudoWithStats(s.pts, hull3d.CullThreshold)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\n", s.name, s.pts.Len(), remaining, len(hull3d.Vertices(facets)))
	}
	w.Flush()
	fmt.Println("\nPaper reference at 10M points: 83669 remaining for 3D-IS vs 2316")
	fmt.Println("for 3D-U; output hulls 14163 vs 423 vertices.")
}
