package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeDoc(t *testing.T, dir, name string, recs []BenchRecord) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(BenchDoc{Results: recs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func rec(name string, ops float64) BenchRecord {
	return BenchRecord{Experiment: "kdtree", Name: name, N: 1000, Dim: 2, OpsPerSec: ops}
}

// TestCompareMachineSpeedCancels: a uniform 3x slowdown (a slower CI
// runner) must pass — the median normalization exists exactly for this.
func TestCompareMachineSpeedCancels(t *testing.T) {
	dir := t.TempDir()
	old := writeDoc(t, dir, "old.json", []BenchRecord{rec("a", 300), rec("b", 3000), rec("c", 90)})
	fresh := writeDoc(t, dir, "new.json", []BenchRecord{rec("a", 100), rec("b", 1000), rec("c", 30)})
	if got := runCompare([]string{old, fresh, "-tolerance", "0.35"}); got != 0 {
		t.Fatalf("uniform slowdown flagged: exit %d", got)
	}
}

// TestCompareLocalizedRegressionFails: one benchmark 2x slower relative to
// its peers must trip the gate.
func TestCompareLocalizedRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := writeDoc(t, dir, "old.json", []BenchRecord{rec("a", 100), rec("b", 100), rec("c", 100)})
	fresh := writeDoc(t, dir, "new.json", []BenchRecord{rec("a", 100), rec("b", 100), rec("c", 50)})
	if got := runCompare([]string{old, fresh}); got != 1 {
		t.Fatalf("localized regression passed: exit %d", got)
	}
	// The same shortfall inside tolerance passes.
	fresh2 := writeDoc(t, dir, "new2.json", []BenchRecord{rec("a", 100), rec("b", 100), rec("c", 80)})
	if got := runCompare([]string{old, fresh2}); got != 0 {
		t.Fatalf("in-tolerance jitter flagged: exit %d", got)
	}
}

// TestCompareVacuousGateFails: when nothing matches (wrong n, renamed
// benchmarks), the gate must fail loudly rather than pass emptily.
func TestCompareVacuousGateFails(t *testing.T) {
	dir := t.TempDir()
	old := writeDoc(t, dir, "old.json", []BenchRecord{rec("a", 100)})
	mismatched := BenchRecord{Experiment: "kdtree", Name: "a", N: 2000, Dim: 2, OpsPerSec: 100}
	fresh := writeDoc(t, dir, "new.json", []BenchRecord{mismatched})
	if got := runCompare([]string{old, fresh}); got != 1 {
		t.Fatalf("vacuous compare passed: exit %d", got)
	}
}

// TestCompareMissingBaselineKeyFails: a baseline record with no counterpart
// in the new run means that benchmark silently stopped running — the gate
// must fail instead of passing on the records that remain.
func TestCompareMissingBaselineKeyFails(t *testing.T) {
	dir := t.TempDir()
	old := writeDoc(t, dir, "old.json", []BenchRecord{rec("a", 100), rec("b", 200)})
	fresh := writeDoc(t, dir, "new.json", []BenchRecord{rec("a", 100)})
	if got := runCompare([]string{old, fresh}); got != 1 {
		t.Fatalf("missing baseline key passed: exit %d", got)
	}
	// The reverse direction — new records the baseline lacks — stays legal:
	// freshly added benchmarks must not fail until the baseline is updated.
	fresh2 := writeDoc(t, dir, "new2.json", []BenchRecord{rec("a", 100), rec("b", 200), rec("c", 50)})
	if got := runCompare([]string{old, fresh2}); got != 0 {
		t.Fatalf("new-only record flagged: exit %d", got)
	}
}

// TestCompareZeroThroughputFails: a matched record reporting zero
// throughput — in the new run or in the baseline — is a broken
// measurement and must fail loudly, not be skipped.
func TestCompareZeroThroughputFails(t *testing.T) {
	dir := t.TempDir()
	old := writeDoc(t, dir, "old.json", []BenchRecord{rec("a", 100), rec("b", 200)})
	fresh := writeDoc(t, dir, "new.json", []BenchRecord{rec("a", 100), rec("b", 0)})
	if got := runCompare([]string{old, fresh}); got != 1 {
		t.Fatalf("zero-throughput new record passed: exit %d", got)
	}
	badOld := writeDoc(t, dir, "badold.json", []BenchRecord{rec("a", 100), rec("b", 0)})
	fresh2 := writeDoc(t, dir, "new2.json", []BenchRecord{rec("a", 100), rec("b", 200)})
	if got := runCompare([]string{badOld, fresh2}); got != 1 {
		t.Fatalf("zero-throughput baseline record passed: exit %d", got)
	}
}

// TestCompareNsPerOpFallback: latency-only records compare via 1e9/ns_per_op.
func TestCompareNsPerOpFallback(t *testing.T) {
	dir := t.TempDir()
	lat := func(name string, ns float64) BenchRecord {
		return BenchRecord{Experiment: "kdtree", Name: name, N: 1000, Dim: 2, NsPerOp: ns}
	}
	old := writeDoc(t, dir, "old.json", []BenchRecord{lat("a", 100), lat("b", 100)})
	fresh := writeDoc(t, dir, "new.json", []BenchRecord{lat("a", 100), lat("b", 250)})
	if got := runCompare([]string{old, fresh}); got != 1 {
		t.Fatalf("latency regression passed: exit %d", got)
	}
}

// TestCompareUsage: bad argument shapes exit 2.
func TestCompareUsage(t *testing.T) {
	if got := runCompare([]string{"only-one.json"}); got != 2 {
		t.Fatalf("missing arg: exit %d", got)
	}
}

// TestNearestKeySuggestion: a baseline key missing from the new run should
// be matched to its closest new key (the typical cause is a rename), and no
// suggestion should surface when nothing is plausibly close.
func TestNearestKeySuggestion(t *testing.T) {
	cands := []string{"kdtree/KNNQuery-f32", "kdtree/AllKNN", "engine/Commit"}
	if s, ok := nearestKey("kdtree/KNNQuery", cands); !ok || s != "kdtree/KNNQuery-f32" {
		t.Fatalf("nearestKey = %q, %v; want the renamed benchmark", s, ok)
	}
	if s, ok := nearestKey("hull/Quickhull3D", cands); ok {
		t.Fatalf("nearestKey suggested %q for a key with no plausible rename", s)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"KNNQuery", "KNNQuery-f32", 4},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Fatalf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
