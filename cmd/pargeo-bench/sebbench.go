package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/seb"
)

// fig10 regenerates Figure 10: smallest-enclosing-ball running times across
// the paper's twelve data sets and six implementations.
func fig10(n int, seed uint64) {
	fmt.Println("=== Figure 10: smallest enclosing ball running times (ms) ===")
	big := 10 * n
	sets := []struct {
		name string
		pts  geom.Points
	}{
		{"2D-IS", generators.InSphere(n, 2, seed)},
		{"2D-OS", generators.OnSphere(n, 2, seed+1)},
		{"3D-IS", generators.InSphere(n, 3, seed+2)},
		{"3D-OS", generators.OnSphere(n, 3, seed+3)},
		{"2D-U", generators.UniformCube(n, 2, seed+4)},
		{"2D-OC", generators.OnCube(n, 2, seed+5)},
		{"3D-U", generators.UniformCube(n, 3, seed+6)},
		{"3D-OC", generators.OnCube(n, 3, seed+7)},
		{"3D-Thai*", generators.Statue(n/2, seed+8)},
		{"3D-Dragon*", generators.Dragon(n*36/100, seed+9)},
		{"2D-OS-big", generators.OnSphere(big, 2, seed+10)},
		{"3D-OS-big", generators.OnSphere(big, 3, seed+11)},
	}
	algs := []struct {
		name string
		f    func(geom.Points) seb.Ball
	}{
		{"CGAL(seq)", func(p geom.Points) seb.Ball { return seb.WelzlSequential(p, seed, seb.Heuristics{}) }},
		{"Welzl", func(p geom.Points) seb.Ball { return seb.Welzl(p, seed, seb.Heuristics{}) }},
		{"WelzlMtf", func(p geom.Points) seb.Ball { return seb.Welzl(p, seed, seb.Heuristics{MTF: true}) }},
		{"WelzlMtfPivot", func(p geom.Points) seb.Ball { return seb.Welzl(p, seed, seb.Heuristics{MTF: true, Pivot: true}) }},
		{"Scan", seb.OrthantScan},
		{"Sampling", func(p geom.Points) seb.Ball { return seb.Sampling(p, seed) }},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "dataset(n)")
	for _, a := range algs {
		fmt.Fprintf(w, "\t%s", a.name)
	}
	fmt.Fprintln(w)
	for _, s := range sets {
		fmt.Fprintf(w, "%s(%d)", s.name, s.pts.Len())
		var r2 float64
		for _, a := range algs {
			pts := s.pts
			var b seb.Ball
			t := timeIt(func() { b = a.f(pts) })
			r2 = b.SqRadius
			fmt.Fprintf(w, "\t%s", ms(t))
		}
		fmt.Fprintf(w, "\t(r2=%.3g)\n", r2)
	}
	w.Flush()
	fmt.Println("\n(* synthetic scan surrogates)")
	fmt.Println("Paper shape: Sampling fastest on 8/12 sets, Scan on the rest;")
	fmt.Println("WelzlMtf 2.1-13.9x over Welzl, WelzlMtfPivot 3.4-58.6x over Welzl;")
	fmt.Println("Sampling/Scan 4.6-34.8x / 3.0-40.3x over WelzlMtfPivot.")
}

// sebStats prints the §6.2 text statistics: the fraction of the input the
// sampling phase scans and the resulting speedup over the plain scan.
func sebStats(n int, seed uint64) {
	fmt.Println("=== §6.2 statistics: sampling phase behavior ===")
	sets := []struct {
		name string
		pts  geom.Points
	}{
		{"2D-U", generators.UniformCube(n, 2, seed)},
		{"3D-U", generators.UniformCube(n, 3, seed+1)},
		{"3D-IS", generators.InSphere(n, 3, seed+2)},
		{"5D-U", generators.UniformCube(n, 5, seed+3)},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "dataset\tsampling-scanned%\tscan(ms)\tsampling(ms)\tspeedup")
	for _, s := range sets {
		pts := s.pts
		var frac float64
		tSample := timeIt(func() { _, frac = seb.SamplingStats(pts, seed) })
		tScan := timeIt(func() { seb.OrthantScan(pts) })
		fmt.Fprintf(w, "%s\t%.1f%%\t%s\t%s\t%.2fx\n",
			s.name, 100*frac, ms(tScan), ms(tSample), tScan/tSample)
	}
	w.Flush()
	fmt.Println("\nPaper reference: sampling scans ~5% of the input on average and is")
	fmt.Println("up to 2.55x (avg 1.47x) faster than the plain orthant scan.")
}
