package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// runCompare implements the benchmark-regression gate:
//
//	pargeo-bench -compare old.json new.json -tolerance 0.35
//
// It matches the two documents' records by (experiment, name, n, dim) and
// compares throughput. Because old.json is typically a committed baseline
// from a DIFFERENT machine than the CI runner executing new.json, absolute
// ratios are meaningless: a slower runner makes every benchmark "regress"
// identically. The gate therefore normalizes by the median new/old ratio
// across all matched records — a uniform machine-speed difference cancels
// out — and fails only when an individual benchmark falls more than the
// tolerance below that median, i.e. when one code path got slower
// RELATIVE to the rest of the suite.
//
// Noise tolerance: single-repetition runs on shared CI runners jitter
// easily by 10-20% per benchmark; the default tolerance of 0.35 is chosen
// so the gate only trips on real, localized regressions (a code path
// ~1.5x slower than its peers), not on runner noise. The known blind spot
// is a UNIFORM slowdown of every benchmark, which normalization absorbs by
// design; that direction is covered by regenerating the committed
// BENCH_*.json on a fixed host whenever performance work lands.
//
// Exit status: 0 pass, 1 regression or error, 2 usage.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	tolerance := fs.Float64("tolerance", 0.35, "allowed fractional shortfall vs the median-normalized baseline")
	// Accept the documented argument order: two paths, then flags.
	var paths []string
	for len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		paths = append(paths, args[0])
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths = append(paths, fs.Args()...)
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "usage: pargeo-bench -compare old.json new.json [-tolerance 0.35]")
		return 2
	}
	oldDoc, err := readBenchDoc(paths[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return 1
	}
	newDoc, err := readBenchDoc(paths[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return 1
	}

	type key struct {
		exp, name string
		n, dim    int
	}
	oldBy := make(map[key]BenchRecord)
	for _, r := range oldDoc.Results {
		oldBy[key{r.Experiment, r.Name, r.N, r.Dim}] = r
	}

	type pair struct {
		k             key
		before, after float64 // throughput (ops/s); derived from ns/op if absent
		ratio         float64
	}
	var pairs []pair
	unmatched := 0
	broken := 0
	seen := make(map[key]bool)
	for _, r := range newDoc.Results {
		k := key{r.Experiment, r.Name, r.N, r.Dim}
		o, ok := oldBy[k]
		if !ok {
			unmatched++
			continue
		}
		seen[k] = true
		ov, nv := throughput(o), throughput(r)
		// A matched record with no usable throughput on either side is a
		// broken measurement, not a skippable one: zero ops in the window
		// (or a zeroed field) would otherwise let a real collapse — or a
		// corrupt baseline — pass the gate vacuously.
		if ov <= 0 {
			fmt.Fprintf(os.Stderr, "compare: baseline record %s/%s has no throughput — regenerate the baseline\n", k.exp, k.name)
			broken++
			continue
		}
		if nv <= 0 {
			fmt.Fprintf(os.Stderr, "compare: new record %s/%s reports zero throughput\n", k.exp, k.name)
			broken++
			continue
		}
		pairs = append(pairs, pair{k, ov, nv, nv / ov})
	}
	if unmatched > 0 {
		fmt.Printf("compare: %d new records have no baseline counterpart (skipped)\n", unmatched)
	}
	// Every baseline record must be covered by the new run: a baseline key
	// with no counterpart means that benchmark silently stopped running
	// (renamed, dropped, or the run was truncated) and its regression gate
	// just went vacuous.
	missing := 0
	newKeys := make([]string, 0, len(newDoc.Results))
	for _, r := range newDoc.Results {
		newKeys = append(newKeys, r.Experiment+"/"+r.Name)
	}
	for _, o := range oldDoc.Results {
		k := key{o.Experiment, o.Name, o.N, o.Dim}
		if !seen[k] {
			fmt.Fprintf(os.Stderr, "compare: baseline record %s/%s (n=%d dim=%d) missing from the new run\n",
				k.exp, k.name, k.n, k.dim)
			// The usual cause is a renamed benchmark, not a dropped one —
			// point at the closest key the new run does have.
			if s, ok := nearestKey(k.exp+"/"+k.name, newKeys); ok {
				fmt.Fprintf(os.Stderr, "compare:   nearest new key: %s — if the benchmark was renamed, regenerate the baseline\n", s)
			}
			missing++
		}
	}
	if broken > 0 || missing > 0 {
		fmt.Fprintf(os.Stderr, "compare: %d broken and %d missing records — failing before the ratio gate\n", broken, missing)
		return 1
	}
	if len(pairs) == 0 {
		fmt.Fprintln(os.Stderr, "compare: no comparable records — the gate would be vacuous; failing")
		return 1
	}

	ratios := make([]float64, len(pairs))
	for i, p := range pairs {
		ratios[i] = p.ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	fmt.Printf("compare: %d records matched; median new/old throughput ratio %.3f (machine-speed normalizer)\n",
		len(pairs), median)

	failed := 0
	for _, p := range pairs {
		norm := p.ratio / median
		status := "ok"
		if norm < 1-*tolerance {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("  %-40s old %12.4g new %12.4g normalized %.3f  %s\n",
			p.k.exp+"/"+p.k.name, p.before, p.after, norm, status)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "compare: %d of %d benchmarks regressed more than %.0f%% vs the suite median\n",
			failed, len(pairs), *tolerance*100)
		return 1
	}
	fmt.Println("compare: no localized regressions beyond tolerance")
	return 0
}

// nearestKey returns the candidate closest to want by edit distance,
// provided it is close enough to plausibly be a rename (distance at most
// half the key length) — suggesting a wildly different key would mislead.
func nearestKey(want string, candidates []string) (string, bool) {
	best, bestD := "", len(want)/2+1
	for _, c := range candidates {
		if d := editDistance(want, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best, best != ""
}

// editDistance is the Levenshtein distance between a and b (two-row DP).
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			sub := prev[j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			cur[j] = min(sub, prev[j]+1, cur[j-1]+1)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// throughput returns a record's ops/s, deriving it from ns/op when the
// experiment only recorded latency.
func throughput(r BenchRecord) float64 {
	if r.OpsPerSec > 0 {
		return r.OpsPerSec
	}
	if r.NsPerOp > 0 {
		return 1e9 / r.NsPerOp
	}
	return 0
}

func readBenchDoc(path string) (*BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc BenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}
