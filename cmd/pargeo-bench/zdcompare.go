package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"pargeo/internal/bdltree"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/zdtree"
)

// zdCompare regenerates the §6.3 Zd-tree comparison on 3D uniform data:
// construction, 10% insertion, 10% deletion, and full k-NN, BDL-tree vs
// the (simplified) Zd-tree. The paper reports the BDL-tree 3.3x/23.1x/45.8x
// slower for construction/insert/delete — the Morton sort is simply much
// cheaper than kd-tree building in 3D — but at parity for k-NN, and notes
// the Zd-tree approach does not extend beyond low dimensions.
func zdCompare(n int, seed uint64) {
	fmt.Println("=== §6.3: BDL-tree vs Zd-tree (3D uniform) ===")
	pts := generators.UniformCube(n, 3, seed)
	box := geom.BoundingBoxAll(pts)
	batch := n / 10

	type result struct{ construct, insert, del, knn float64 }
	measure := func(mkBDL bool) result {
		var r result
		if mkBDL {
			tr := bdltree.New(3, bdltree.Options{})
			r.construct = timeIt(func() { tr.Insert(pts) })
			tr2 := bdltree.New(3, bdltree.Options{})
			r.insert = timeIt(func() {
				for i := 0; i < 10; i++ {
					tr2.Insert(pts.Slice(i*batch, (i+1)*batch))
				}
			})
			r.del = timeIt(func() {
				for i := 0; i < 10; i++ {
					tr2.Delete(pts.Slice(i*batch, (i+1)*batch))
				}
			})
			tr3 := bdltree.New(3, bdltree.Options{})
			ids := tr3.Insert(pts)
			r.knn = timeIt(func() { tr3.KNN(pts, 5, ids) })
			return r
		}
		tr := zdtree.New(3, box)
		r.construct = timeIt(func() { tr.Insert(pts) })
		tr2 := zdtree.New(3, box)
		r.insert = timeIt(func() {
			for i := 0; i < 10; i++ {
				tr2.Insert(pts.Slice(i*batch, (i+1)*batch))
			}
		})
		r.del = timeIt(func() {
			for i := 0; i < 10; i++ {
				tr2.Delete(pts.Slice(i*batch, (i+1)*batch))
			}
		})
		tr3 := zdtree.New(3, box)
		ids := tr3.Insert(pts)
		r.knn = timeIt(func() { tr3.KNN(pts, 5, ids) })
		return r
	}
	zd := measure(false)
	bdl := measure(true)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "operation\tZd-tree(ms)\tBDL(ms)\tBDL/Zd")
	fmt.Fprintf(w, "construction\t%s\t%s\t%.1fx\n", ms(zd.construct), ms(bdl.construct), bdl.construct/zd.construct)
	fmt.Fprintf(w, "10%% insert\t%s\t%s\t%.1fx\n", ms(zd.insert), ms(bdl.insert), bdl.insert/zd.insert)
	fmt.Fprintf(w, "10%% delete\t%s\t%s\t%.1fx\n", ms(zd.del), ms(bdl.del), bdl.del/zd.del)
	fmt.Fprintf(w, "full 5-NN\t%s\t%s\t%.1fx\n", ms(zd.knn), ms(bdl.knn), bdl.knn/zd.knn)
	w.Flush()
	fmt.Println("\nPaper reference (3D-U-10M, 36 cores): BDL 3.3x, 23.1x, 45.8x slower")
	fmt.Println("for construction/insert/delete; roughly equal k-NN speed. The")
	fmt.Println("Zd-tree does not extend beyond ~3 dimensions (Morton bit budget).")
}
