package main

import (
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"

	"pargeo/internal/bdltree"
	"pargeo/internal/closestpair"
	"pargeo/internal/delaunay"
	"pargeo/internal/emst"
	"pargeo/internal/generators"
	"pargeo/internal/geom"
	"pargeo/internal/graphgen"
	"pargeo/internal/hull2d"
	"pargeo/internal/hull3d"
	"pargeo/internal/kdtree"
	"pargeo/internal/morton"
	"pargeo/internal/seb"
	"pargeo/internal/wspd"
)

// table1 regenerates Table 1: single-thread time T1, all-thread time Tp,
// and self-relative speedup for every ParGeo operation, on uniform data.
// The paper's column "T36h" becomes "Tp" at the host's GOMAXPROCS.
func table1(n int, seed uint64) {
	fmt.Println("=== Table 1: runtimes (s) and self-relative speedups, uniform data ===")
	u2 := generators.UniformCube(n, 2, seed)
	u3 := generators.UniformCube(n, 3, seed+1)
	u5 := generators.UniformCube(n, 5, seed+2)
	u7 := generators.UniformCube(n, 7, seed+3)

	// The graph generators are super-linear in practice; scale them down so
	// "all" stays tractable on small machines.
	gn := n / 4
	if gn < 1000 {
		gn = n
	}
	g2 := generators.UniformCube(gn, 2, seed+4)

	queries2 := make([]int32, u2.Len())
	for i := range queries2 {
		queries2[i] = int32(i)
	}

	rangeBoxes := func(pts geom.Points, w float64) []geom.Box {
		out := make([]geom.Box, 1000)
		for i := range out {
			c := pts.At(i * (pts.Len() / len(out)))
			b := geom.EmptyBox(pts.Dim)
			lo := make([]float64, pts.Dim)
			hi := make([]float64, pts.Dim)
			for d := 0; d < pts.Dim; d++ {
				lo[d], hi[d] = c[d]-w, c[d]+w
			}
			b.Expand(lo)
			b.Expand(hi)
			out[i] = b
		}
		return out
	}

	rows := []struct {
		name string
		f    func()
	}{
		{"kd-tree Build (2d)", func() { kdtree.Build(u2, kdtree.Options{}) }},
		{"kd-tree Build (5d)", func() { kdtree.Build(u5, kdtree.Options{}) }},
		{"kd-tree k-NN (2d)", func() {
			t := kdtree.Build(u2, kdtree.Options{})
			t.KNN(queries2, 5)
		}},
		{"kd-tree Range Search (2d)", func() {
			t := kdtree.Build(u2, kdtree.Options{})
			t.RangeSearchParallel(rangeBoxes(u2, 8))
		}},
		{"Batch-dynamic kd-tree Construction (5d)", func() {
			tr := bdltree.New(5, bdltree.Options{})
			tr.Insert(u5)
		}},
		{"Batch-dynamic kd-tree Insert (5d)", func() {
			tr := bdltree.New(5, bdltree.Options{})
			b := u5.Len() / 10
			for i := 0; i < 10; i++ {
				tr.Insert(u5.Slice(i*b, (i+1)*b))
			}
		}},
		{"Batch-dynamic kd-tree Delete (5d)", func() {
			tr := bdltree.New(5, bdltree.Options{})
			tr.Insert(u5)
			b := u5.Len() / 10
			for i := 0; i < 10; i++ {
				tr.Delete(u5.Slice(i*b, (i+1)*b))
			}
		}},
		{"WSPD (2d)", func() {
			t := kdtree.Build(u2, kdtree.Options{LeafSize: 1})
			wspd.Compute(t, 2.0)
		}},
		{"EMST (2d)", func() { emst.Compute(u2) }},
		{"Convex Hull (2d)", func() { hull2d.DivideConquer(u2) }},
		{"Convex Hull (3d)", func() { hull3d.DivideConquer(u3) }},
		{"Smallest Enclosing Ball (2d)", func() { seb.Sampling(u2, seed) }},
		{"Smallest Enclosing Ball (5d)", func() { seb.Sampling(u5, seed) }},
		{"Closest Pair (2d)", func() { closestpair.ClosestPair(u2) }},
		{"Closest Pair (3d)", func() { closestpair.ClosestPair(u3) }},
		{"k-NN Graph (2d)", func() { graphgen.KNNGraph(g2, 5) }},
		{"Delaunay Graph (2d)", func() { delaunay.Parallel(g2, seed) }},
		{"Gabriel Graph (2d)", func() { graphgen.GabrielGraph(g2, seed) }},
		{"Beta-skeleton Graph (2d)", func() { graphgen.BetaSkeleton(g2, 1.5, seed) }},
		{"Spanner (2d)", func() { graphgen.Spanner(g2, 6) }},
		{"Morton Sort (5d)", func() { morton.Sort(u5) }},
		{"BDL-tree full k-NN (7d)", func() {
			tr := bdltree.New(7, bdltree.Options{})
			ids := tr.Insert(u7)
			tr.KNN(u7, 5, ids)
		}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Implementation\tT1\tT%d\tSpeedup\n", runtime.NumCPU())
	for _, row := range rows {
		t1 := withThreads(1, row.f)
		tp := withThreads(runtime.NumCPU(), row.f)
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.2fx\n", row.name, t1, tp, t1/tp)
		record(BenchRecord{Experiment: "table1", Name: row.name, N: n, Threads: 1, Seconds: t1})
		record(BenchRecord{Experiment: "table1", Name: row.name, N: n, Threads: runtime.NumCPU(), Seconds: tp})
	}
	w.Flush()
	fmt.Println("\nPaper reference (36 cores, 10M points): speedups 8.1x-46.6x, avg 23.2x.")
	fmt.Println("On a 1-core host the speedup column is ~1x by construction.")
}
