package pargeo

import (
	"math"
	"sort"
	"testing"

	"pargeo/internal/oracle"
)

// Cross-algorithm equivalence: every implementation selectable through the
// facade must give the same answer on the same input. Hull vertex sets are
// compared after canonicalization to the strict hull (some variants keep
// collinear boundary points — a valid hull, but not a canonical one), and
// by coordinates rather than indices (duplicate points make index choice
// arbitrary). Each hull is additionally checked against the brute-force
// membership oracle: every input point must lie inside it.

var hull2DAlgs = []struct {
	name string
	alg  Hull2DAlgorithm
}{
	{"MonotoneChain", Hull2DMonotoneChain},
	{"SeqQuickhull", Hull2DSeqQuickhull},
	{"Quickhull", Hull2DQuickhull},
	{"RandInc", Hull2DRandInc},
	{"DivideConquer", Hull2DDivideConquer},
}

var hull3DAlgs = []struct {
	name string
	alg  Hull3DAlgorithm
}{
	{"SeqQuickhull", Hull3DSeqQuickhull},
	{"SeqRandInc", Hull3DSeqRandInc},
	{"Quickhull", Hull3DQuickhull},
	{"RandInc", Hull3DRandInc},
	{"Pseudo", Hull3DPseudo},
	{"DivideConquer", Hull3DDivideConquer},
}

var sebAlgs = []struct {
	name string
	alg  SEBAlgorithm
}{
	{"WelzlSeq", SEBWelzlSeq},
	{"Welzl", SEBWelzl},
	{"WelzlMtf", SEBWelzlMtf},
	{"WelzlMtfPivot", SEBWelzlMtfPivot},
	{"Scan", SEBScan},
	{"Sampling", SEBSampling},
}

// canonicalHull2D reduces a hull index list to the sorted coordinate set of
// its strict hull vertices (collinear boundary points removed).
func canonicalHull2D(pts Points, hull []int32) [][2]float64 {
	sub := NewPoints(len(hull), 2)
	for i, id := range hull {
		sub.Set(i, pts.At(int(id)))
	}
	strict := ConvexHull2D(sub, Hull2DMonotoneChain)
	out := make([][2]float64, len(strict))
	for i, id := range strict {
		p := sub.At(int(id))
		out[i] = [2]float64{p[0], p[1]}
	}
	sortCoords2(out)
	return out
}

func sortCoords2(s [][2]float64) {
	sort.Slice(s, func(a, b int) bool {
		if s[a][0] != s[b][0] {
			return s[a][0] < s[b][0]
		}
		return s[a][1] < s[b][1]
	})
}

func coords2Equal(a, b [][2]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hull2DInputs() map[string]Points {
	collinear := NewPoints(100, 2)
	for i := 0; i < 100; i++ {
		collinear.Set(i, []float64{float64(i) * 0.5, float64(i) * 1.5})
	}
	grid := NewPoints(400, 2)
	k := 0
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			grid.Set(k, []float64{float64(i), float64(j)})
			k++
		}
	}
	return map[string]Points{
		"Uniform":      Uniform(3000, 2, 1),
		"InSphere":     InSphere(3000, 2, 2),
		"OnSphere":     OnSphere(3000, 2, 3),
		"SeedSpreader": SeedSpreader(3000, 2, 4),
		"Collinear":    collinear,
		"Grid":         grid,
	}
}

func TestHull2DAlgorithmsEquivalent(t *testing.T) {
	for name, pts := range hull2DInputs() {
		ref := canonicalHull2D(pts, ConvexHull2D(pts, Hull2DMonotoneChain))
		for _, a := range hull2DAlgs[1:] {
			h := ConvexHull2D(pts, a.alg)
			got := canonicalHull2D(pts, h)
			if !coords2Equal(got, ref) {
				t.Fatalf("%s/%s: canonical vertex set differs (%d vs %d vertices)",
					name, a.name, len(got), len(ref))
			}
			// Membership oracle: every input point inside the returned hull.
			if len(h) >= 3 {
				for i := 0; i < pts.Len(); i += 7 {
					if !oracle.InHull2D(pts, h, pts.At(i), 1e-7) {
						t.Fatalf("%s/%s: point %d outside hull", name, a.name, i)
					}
				}
			}
		}
	}
}

func hull3DInputs() map[string]Points {
	coplanar := NewPoints(300, 3)
	for i := 0; i < 300; i++ {
		x, y := float64(i%20), float64(i/20)
		coplanar.Set(i, []float64{x, y, 2*x - 3*y + 1})
	}
	return map[string]Points{
		"Uniform":  Uniform(2000, 3, 5),
		"InSphere": InSphere(2000, 3, 6),
		"OnSphere": OnSphere(2000, 3, 7),
		"Coplanar": coplanar,
	}
}

func TestHull3DAlgorithmsEquivalent(t *testing.T) {
	for name, pts := range hull3DInputs() {
		var refSet [][3]float64
		refNil := false
		for ai, a := range hull3DAlgs {
			facets := ConvexHull3D(pts, a.alg)
			if len(facets) == 0 {
				if ai == 0 {
					refNil = true
				} else if !refNil {
					t.Fatalf("%s/%s: empty hull where %s found one", name, a.name, hull3DAlgs[0].name)
				}
				continue
			}
			if refNil {
				t.Fatalf("%s/%s: found a hull where %s returned none", name, a.name, hull3DAlgs[0].name)
			}
			verts := HullVertices(facets)
			set := make([][3]float64, len(verts))
			for i, id := range verts {
				p := pts.At(int(id))
				set[i] = [3]float64{p[0], p[1], p[2]}
			}
			sort.Slice(set, func(a, b int) bool {
				if set[a][0] != set[b][0] {
					return set[a][0] < set[b][0]
				}
				if set[a][1] != set[b][1] {
					return set[a][1] < set[b][1]
				}
				return set[a][2] < set[b][2]
			})
			if ai == 0 {
				refSet = set
				continue
			}
			if len(set) != len(refSet) {
				t.Fatalf("%s/%s: %d hull vertices, reference has %d",
					name, a.name, len(set), len(refSet))
			}
			for i := range set {
				if set[i] != refSet[i] {
					t.Fatalf("%s/%s: vertex set differs at %d: %v vs %v",
						name, a.name, i, set[i], refSet[i])
				}
			}
			// Membership oracle on a sample of the input.
			for i := 0; i < pts.Len(); i += 11 {
				if !oracle.InHull3D(pts, facets, pts.At(i), 1e-7) {
					t.Fatalf("%s/%s: point %d outside hull", name, a.name, i)
				}
			}
		}
	}
}

func TestSEBAlgorithmsEquivalent(t *testing.T) {
	collinear := NewPoints(64, 3)
	for i := 0; i < 64; i++ {
		collinear.Set(i, []float64{float64(i), 2 * float64(i), -float64(i)})
	}
	dup := NewPoints(200, 3)
	base := Uniform(50, 3, 9)
	for i := 0; i < 200; i++ {
		dup.Set(i, base.At(i%50))
	}
	inputs := map[string]Points{
		"Uniform":    Uniform(2000, 3, 8),
		"OnSphere":   OnSphere(2000, 3, 9),
		"InSphere5D": InSphere(1500, 5, 10),
		"Collinear":  collinear,
		"Duplicated": dup,
	}
	for name, pts := range inputs {
		ref := SmallestEnclosingBall(pts, SEBWelzlSeq)
		refR := math.Sqrt(ref.SqRadius)
		for _, a := range sebAlgs[1:] {
			b := SmallestEnclosingBall(pts, a.alg)
			r := math.Sqrt(b.SqRadius)
			if math.Abs(r-refR) > 1e-9*(1+refR) {
				t.Fatalf("%s/%s: radius %.15g, reference %.15g (diff %g)",
					name, a.name, r, refR, math.Abs(r-refR))
			}
			// The ball must actually enclose every point (within tolerance).
			for i := 0; i < pts.Len(); i += 13 {
				d := dist(b.Center[:pts.Dim], pts.At(i))
				if d > r*(1+1e-9)+1e-9 {
					t.Fatalf("%s/%s: point %d outside ball (%g > %g)", name, a.name, i, d, r)
				}
			}
		}
	}
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// TestClosestPairMatchesOracle ties the facade's closest-pair to the O(n²)
// reference on every distribution (small n keeps the oracle cheap).
func TestClosestPairMatchesOracle(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for seed := uint64(1); seed <= 3; seed++ {
			pts := Uniform(300, dim, seed)
			got := ClosestPair(pts)
			_, _, wantD := oracle.ClosestPair(pts)
			if got.SqDist != wantD {
				t.Fatalf("d%d seed %d: closest pair sqdist %v, oracle %v",
					dim, seed, got.SqDist, wantD)
			}
		}
	}
}
