package client

import (
	"testing"
	"time"
)

// fakeClock drives the controller deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestWindowGrowsOnHealthyAcks(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := newWindowController(32, clk.now)
	if w.current() != 1 {
		t.Fatalf("initial window %d, want 1", w.current())
	}
	// A steady stream of healthy acks at a constant RTT: the window must
	// climb monotonically to the cap and stop there.
	last := w.current()
	for i := 0; i < 800; i++ {
		clk.advance(10 * time.Millisecond)
		w.onAck(10*time.Millisecond, false)
		if cur := w.current(); cur < last {
			t.Fatalf("window shrank %d→%d on a healthy ack", last, cur)
		} else {
			last = cur
		}
	}
	if last != 32 {
		t.Fatalf("window %d after 8s of healthy acks, want the 32 cap", last)
	}
}

func TestWindowBacksOffOnShed(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := newWindowController(64, clk.now)
	for i := 0; i < 400; i++ {
		clk.advance(10 * time.Millisecond)
		w.onAck(10*time.Millisecond, false)
	}
	before := w.current()
	if before < 8 {
		t.Fatalf("window only reached %d before the shed", before)
	}
	clk.advance(10 * time.Millisecond)
	w.onAck(10*time.Millisecond, true)
	after := w.current()
	if want := int(float64(before) * cubicBeta); after > want+1 || after < want-1 {
		t.Fatalf("shed took window %d→%d, want ≈ %d (β=%.1f)", before, after, want, cubicBeta)
	}

	// A burst of sheds inside one smoothed RTT is ONE congestion event:
	// the window must not collapse multiplicatively per response.
	for i := 0; i < 10; i++ {
		clk.advance(100 * time.Microsecond)
		w.onAck(10*time.Millisecond, true)
	}
	if got := w.current(); got != after {
		t.Fatalf("shed burst inside one RTT moved window %d→%d", after, got)
	}

	// After the burst, growth resumes and re-approaches the plateau.
	for i := 0; i < 400; i++ {
		clk.advance(10 * time.Millisecond)
		w.onAck(10*time.Millisecond, false)
	}
	if got := w.current(); got <= after {
		t.Fatalf("window stuck at %d after congestion cleared", got)
	}
}

func TestWindowBacksOffOnRTTInflation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := newWindowController(64, clk.now)
	for i := 0; i < 300; i++ {
		clk.advance(5 * time.Millisecond)
		w.onAck(5*time.Millisecond, false)
	}
	before := w.current()
	// RTTs jump past rttInflation × the 5ms floor with no explicit shed:
	// server queues are absorbing the overload and the controller must
	// read that as congestion.
	clk.advance(20 * time.Millisecond)
	w.onAck(20*time.Millisecond, false)
	if got := w.current(); got >= before {
		t.Fatalf("window %d→%d on a %gx-inflated RTT, want a decrease", before, got, 20.0/5.0)
	}
}

func TestWindowFloorAndCeiling(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := newWindowController(4, clk.now)
	// Hammer with congestion: the window never leaves [1, 4].
	for i := 0; i < 100; i++ {
		clk.advance(50 * time.Millisecond)
		w.onAck(10*time.Millisecond, true)
		if cur := w.current(); cur < 1 || cur > 4 {
			t.Fatalf("window %d outside [1, 4]", cur)
		}
	}
	if w.current() != 1 {
		t.Fatalf("window %d after sustained congestion, want the floor 1", w.current())
	}
	// Zero and negative RTT samples (clock steps) must not poison state.
	w.onAck(0, false)
	w.onAck(-time.Second, false)
	if cur := w.current(); cur < 1 || cur > 4 {
		t.Fatalf("window %d after degenerate samples", cur)
	}
}
