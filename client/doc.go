// Package client talks to a pargeo-serve daemon: a typed, concurrent
// API over the wire protocol (internal/wire) whose surface mirrors the
// embedded engine's — KNN, RangeSearch, RangeCount, Update/Insert/Delete
// returning the same UpdateResult, plus Epoch, Checkpoint, and Stats.
//
// # Batching
//
// The server-side engine answers concurrent requests with flat-combining
// committers and grouped query passes; the client mirrors the trick on
// the connection's write side so that concurrency survives the network
// hop. Calls park on a per-connection combiner. The first arrival while
// no flush is running becomes the leader: it drains everything parked,
// merges what merges, writes all resulting frames in one call, hands
// leadership to a newly parked call, and then waits for its own response
// like everyone else. Under load, whole groups of goroutine calls cross
// the wire as single requests and reach the engine as single batches:
//
//   - KNN calls sharing a k merge into one multi-query request, answered
//     by one parallel pass over one snapshot.
//   - Pure inserts concatenate into one update request — one commit, one
//     fsync — and the assigned ids are split back by row span.
//   - Updates with deletions, range queries, and the admin calls never
//     merge (a merged deletion count could not be attributed back to
//     callers), but they share the flush's single write.
//
// No timers are involved: like the engine's combiners, batches form only
// from calls that are genuinely concurrent, so an idle connection adds
// no latency. Options.NoBatch disables merging for measurement — the
// serve benchmark's batched-vs-unbatched comparison is exactly this
// switch.
//
// # Adaptive window
//
// By default exactly one merged batch is in flight per connection — the
// round trip is the combining window, which maximizes merging for
// closed-loop callers. Options.MaxWindow ≥ 2 relaxes that into an
// adaptive pipeline: up to a CUBIC-controlled number of batches overlap
// on the wire, the window growing while responses come back healthy and
// backing off multiplicatively when the server sheds (StatusOverloaded)
// or round-trip times inflate over the connection's observed floor.
// This trades merging depth for concurrency; it is the right setting
// for open-loop load (the overload benchmark enables it) and the wrong
// one for a handful of synchronous callers.
//
// # Overload, deadlines, and retries
//
// A server past its admission budgets sheds requests instead of queueing
// them. A shed call fails fast with an *OverloadedError carrying the
// server's retry-after hint; errors.Is(err, ErrOverloaded) matches it.
// Options.RetryOverloaded lets the client absorb sheds of idempotent
// reads by retrying after the hint plus jitter; updates are never
// auto-retried. Options.RequestTimeout (and the KNNContext /
// UpdateContext variants) bound each call: at the deadline the caller
// gets context.DeadlineExceeded immediately, while the batcher's
// internal bookkeeping — including combiner-baton handoff for a call
// that was parked — is carried out by a deputy on its behalf, so an
// abandoned call can never wedge the connection.
//
// # Errors
//
// Failures are typed, never string-matched: ErrEngineClosed (the same
// value as the embedded engine's closed error) when the server is
// shutting down, ErrConnClosed when this client's stream is gone,
// *OverloadedError (matching ErrOverloaded) when the request was shed,
// and *RemoteError for other server-side failures. A broken stream
// poisons the client; every in-flight and future call resolves promptly.
//
// # Durability
//
// The daemon drains in-flight requests before closing its engine, so any
// update this client saw acknowledged is covered by the engine's
// durability contract (see the repository README): on a SyncEvery=1
// server an acknowledged epoch survives any crash; in relaxed mode it is
// bounded by the group-commit window, exactly as for embedded use.
//
// # Time travel and pins
//
// The as-of variants (KNNAsOf, KNNBatchAsOf, RangeSearchAsOf,
// RangeCountAsOf) answer against a retained historical epoch instead of
// the live snapshot, and Pin/PinEpoch/Unpin manage server-side pins
// that keep an epoch resolvable past the server's retention window. A
// pin taken through this client is owned by its connection: other
// connections cannot release it, and Close (or a broken stream)
// releases every pin the connection still holds — a crashed analytics
// client cannot leak retained memory on the server. An epoch outside
// the window fails with a *NotRetainedError matching
// ErrEpochNotRetained. Pin is never auto-retried: a pin the client
// cannot confirm must not be held server-side.
//
// For where this package sits in the whole system — the layer diagram
// and the request lifecycles through client, server, engine, and WAL —
// see docs/ARCHITECTURE.md at the repository root.
package client
