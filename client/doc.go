// Package client talks to a pargeo-serve daemon: a typed, concurrent
// API over the wire protocol (internal/wire) whose surface mirrors the
// embedded engine's — KNN, RangeSearch, RangeCount, Update/Insert/Delete
// returning the same UpdateResult, plus Epoch, Checkpoint, and Stats.
//
// # Batching
//
// The server-side engine answers concurrent requests with flat-combining
// committers and grouped query passes; the client mirrors the trick on
// the connection's write side so that concurrency survives the network
// hop. Calls park on a per-connection combiner. The first arrival while
// no flush is running becomes the leader: it drains everything parked,
// merges what merges, writes all resulting frames in one call, hands
// leadership to a newly parked call, and then waits for its own response
// like everyone else. Under load, whole groups of goroutine calls cross
// the wire as single requests and reach the engine as single batches:
//
//   - KNN calls sharing a k merge into one multi-query request, answered
//     by one parallel pass over one snapshot.
//   - Pure inserts concatenate into one update request — one commit, one
//     fsync — and the assigned ids are split back by row span.
//   - Updates with deletions, range queries, and the admin calls never
//     merge (a merged deletion count could not be attributed back to
//     callers), but they share the flush's single write.
//
// No timers are involved: like the engine's combiners, batches form only
// from calls that are genuinely concurrent, so an idle connection adds
// no latency. Options.NoBatch disables merging for measurement — the
// serve benchmark's batched-vs-unbatched comparison is exactly this
// switch.
//
// # Errors
//
// Failures are typed, never string-matched: ErrEngineClosed (the same
// value as the embedded engine's closed error) when the server is
// shutting down, ErrConnClosed when this client's stream is gone, and
// *RemoteError for other server-side failures. A broken stream poisons
// the client; every in-flight and future call resolves promptly.
//
// # Durability
//
// The daemon drains in-flight requests before closing its engine, so any
// update this client saw acknowledged is covered by the engine's
// durability contract (see the repository README): on a SyncEvery=1
// server an acknowledged epoch survives any crash; in relaxed mode it is
// bounded by the group-commit window, exactly as for embedded use.
package client
