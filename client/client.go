package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pargeo/internal/engine"
	"pargeo/internal/geom"
	"pargeo/internal/wire"
)

// Points and Box are the coordinate types shared with the pargeo facade
// (pargeo.Points / pargeo.Box are the same aliases).
type (
	Points = geom.Points
	Box    = geom.Box
)

// UpdateResult is the engine's update acknowledgement, identical to the
// embedded engine's — code written against pargeo.Engine.Update reads a
// remote result the same way.
type UpdateResult = engine.UpdateResult

// ErrEngineClosed reports that the server's engine rejected the call
// because it is shut down or shutting down. It is the same value as the
// embedded engine's ErrClosed, so one errors.Is target covers both
// embedded and remote use.
var ErrEngineClosed = engine.ErrClosed

// ErrConnClosed reports that the client's connection is gone: Close was
// called, the stream broke, or the server dropped it. The sticky stream
// error (when there is one) is wrapped alongside.
var ErrConnClosed = errors.New("client: connection closed")

// RemoteError is a server-side failure that is not the closed state:
// the message is the remote error's text.
type RemoteError struct{ Msg string }

// Error returns the remote failure prefixed with its origin.
func (e *RemoteError) Error() string { return "pargeo server: " + e.Msg }

// ErrOverloaded is the errors.Is target for load-shed calls: the server
// (or its engine) refused the request at a full admission budget rather
// than queueing it. The concrete error is an *OverloadedError carrying
// the server's retry hint.
var ErrOverloaded = errors.New("client: server overloaded")

// OverloadedError reports one shed request. RetryAfter is the server's
// hint for when a retry is worth sending; errors.Is matches it against
// ErrOverloaded.
type OverloadedError struct {
	RetryAfter time.Duration
	Msg        string
}

// Error returns the shed message with the server's retry hint.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("%s (retry after %v)", e.Msg, e.RetryAfter)
}

// Is reports whether target is ErrOverloaded, making every shed match
// errors.Is(err, ErrOverloaded).
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// ErrEpochNotRetained is the errors.Is target for time-travel calls naming
// an epoch the server no longer retains (or never published). It is the
// same value as the embedded engine's ErrEpochNotRetained, so one target
// covers both embedded and remote use. The concrete error is a
// *NotRetainedError carrying the server's message.
var ErrEpochNotRetained = engine.ErrEpochNotRetained

// NotRetainedError reports one as-of or pin call that named an epoch
// outside the server's retention window; errors.Is matches it against
// ErrEpochNotRetained.
type NotRetainedError struct{ Msg string }

// Error returns the server's message prefixed with its origin.
func (e *NotRetainedError) Error() string { return "pargeo server: " + e.Msg }

// Is reports whether target is ErrEpochNotRetained, so a remote
// retention miss matches the same errors.Is target as an embedded one.
func (e *NotRetainedError) Is(target error) bool { return target == ErrEpochNotRetained }

// Options configure a Client.
type Options struct {
	// NoBatch disables call coalescing: every call becomes its own wire
	// request. The connection is still shared and pipelined. Exists for
	// measurement (the serve benchmark's unbatched arm) and debugging.
	NoBatch bool

	// MaxWindow caps the adaptive in-flight batch window. 0 or 1 keeps
	// the default single-in-flight-batch combiner, which maximizes
	// merging: every call arriving during a round trip joins the next
	// batch. ≥ 2 enables the CUBIC window controller: up to the current
	// window's worth of batches pipeline concurrently, the window growing
	// while the connection is healthy and multiplicatively backing off on
	// StatusOverloaded sheds or RTT inflation. Pipelining trades merging
	// depth for concurrency — worth it for open-loop load or long pipes,
	// not for a handful of closed-loop callers.
	MaxWindow int

	// RequestTimeout bounds each call when > 0: the call fails with
	// context.DeadlineExceeded if its response has not arrived in time,
	// and a connection write stalled past it poisons the client. The
	// per-call context variants (KNNContext, UpdateContext) take the
	// tighter of the two bounds.
	RequestTimeout time.Duration

	// RetryOverloaded is the number of times an idempotent read (KNN,
	// KNNBatch, RangeSearch, RangeCount) is retried after a shed, waiting
	// out the server's retry hint with ±50% jitter between attempts. 0
	// disables retries. Updates are never retried — the caller owns
	// non-idempotent retry policy.
	RetryOverloaded int
}

// batch classes for the combiner.
const (
	classRaw    = iota // pre-built request, never merged
	classKNN           // solo k-NN query: mergeable by k
	classInsert        // insert-only update: mergeable
)

// call is one in-flight API call parked on the combiner.
type call struct {
	class int
	k     int       // classKNN
	q     []float64 // classKNN
	ins   Points    // classInsert
	req   *wire.Request

	done chan struct{}
	lead chan struct{} // combiner baton

	// Results, valid after done closes.
	resp wire.Response
	ids  []int32 // classKNN / classInsert member share
	err  error
}

// Client is one connection to a pargeo-serve daemon. All methods are
// safe for concurrent use by any number of goroutines; see the package
// documentation for the batching semantics.
type Client struct {
	conn   net.Conn
	opts   Options
	dim    int
	shards int

	// Write side: the flat-combining batcher (doc.go). binflight counts
	// batches written but not fully answered; the window (1 without
	// Options.MaxWindow, adaptive with it) caps how many run at once.
	bmu       sync.Mutex
	bpending  []*call
	binflight int
	win       *windowController // nil unless Options.MaxWindow ≥ 2
	wmu       sync.Mutex        // serializes conn.Write between concurrent flushes

	// Read side: in-flight requests by id, completed by the reader
	// goroutine. A handler distributes one response to its calls.
	pmu     sync.Mutex
	pending map[uint64]func(*wire.Response, error)
	nextID  uint64
	sticky  error // set once the stream is unusable; guarded by pmu

	readerDone chan struct{}
}

// Dial connects to a pargeo-serve daemon, performs the Hello handshake
// (learning the engine's dimension and shard count), and starts the
// response reader.
func Dial(addr string) (*Client, error) { return DialWith(addr, Options{}) }

// DialWith is Dial with explicit options.
func DialWith(addr string, opts Options) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		opts:       opts,
		pending:    map[uint64]func(*wire.Response, error){},
		readerDone: make(chan struct{}),
	}
	if opts.MaxWindow >= 2 {
		c.win = newWindowController(opts.MaxWindow, time.Now)
	}
	// Handshake runs synchronously, before the reader exists: id 0 is
	// reserved for it and the first frame back must answer it.
	hello := wire.AppendRequest(nil, &wire.Request{Op: wire.OpHello})
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, err
	}
	buf, err := wire.ReadFrame(conn, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	// The Hello response carries no coordinates; dim 1 satisfies the
	// decoder before the real dimension is known.
	resp, _, err := wire.DecodeResponse(buf, 1)
	if err != nil || resp.Op != wire.OpHello || resp.ID != 0 {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: bad response (%v)", err)
	}
	if err := respErr(&resp); err != nil {
		conn.Close()
		return nil, err
	}
	if resp.Dim < 1 {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: server dim %d", resp.Dim)
	}
	c.dim = int(resp.Dim)
	c.shards = int(resp.Shards)
	go c.readLoop()
	return c, nil
}

// Dim returns the server engine's point dimensionality.
func (c *Client) Dim() int { return c.dim }

// Shards returns the server engine's shard count.
func (c *Client) Shards() int { return c.shards }

// Close tears the connection down. In-flight calls fail with
// ErrConnClosed. Closing an already-closed client is a no-op.
func (c *Client) Close() error {
	c.fail(ErrConnClosed)
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// respErr maps a response status to the client's typed errors.
func respErr(r *wire.Response) error {
	switch r.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusClosed:
		return ErrEngineClosed
	case wire.StatusOverloaded:
		return &OverloadedError{
			RetryAfter: time.Duration(r.RetryAfterMillis) * time.Millisecond,
			Msg:        r.ErrMsg,
		}
	case wire.StatusNotRetained:
		return &NotRetainedError{Msg: r.ErrMsg}
	default:
		return &RemoteError{Msg: r.ErrMsg}
	}
}

// fail poisons the client: future and in-flight calls all resolve with
// err (wrapped under ErrConnClosed when it isn't the sticky value
// already). First caller wins; later errors are ignored.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.sticky != nil {
		c.pmu.Unlock()
		return
	}
	if err != ErrConnClosed {
		err = fmt.Errorf("%w: %w", ErrConnClosed, err)
	}
	c.sticky = err
	handlers := c.pending
	c.pending = map[uint64]func(*wire.Response, error){}
	c.pmu.Unlock()
	for _, h := range handlers {
		h(nil, err)
	}
}

// readLoop is the reader goroutine: one response frame at a time,
// dispatched to its registered handler by request id.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	var buf []byte
	for {
		var err error
		buf, err = wire.ReadFrame(c.conn, buf)
		if err != nil {
			c.fail(err)
			return
		}
		resp, _, err := wire.DecodeResponse(buf, c.dim)
		if err != nil {
			c.fail(err)
			c.conn.Close()
			return
		}
		c.pmu.Lock()
		h := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.pmu.Unlock()
		if h != nil {
			h(&resp, nil)
		}
	}
}

// window is the current in-flight batch cap: 1 without the adaptive
// controller, its CUBIC-driven value with it.
func (c *Client) window() int {
	if c.win == nil {
		return 1
	}
	return c.win.current()
}

// submit parks one call on the combiner and waits for its result. An
// arrival while the window has a free slot becomes a flush leader: it
// drains the queue, merges what merges, and writes one buffer — the same
// leader/baton protocol as the engine's committers, applied to the
// connection's write side. Unlike the engine's (whose combining window
// is the synchronous commit), a flushed batch holds its window slot
// until its LAST response arrives (batchDone, called from the reader):
// the network round trip is the combining window, so calls arriving
// while the window is full accumulate into the next batch instead of
// racing out as singletons.
func (c *Client) submit(ca *call) {
	if err := c.submitCtx(context.Background(), ca); err != nil {
		// Unreachable with a background context; belt and braces.
		ca.err = err
	}
}

// submitCtx is submit with a deadline. A nil return means the call
// resolved: ca's result fields are valid. A non-nil return means the
// caller abandoned the call at ctx's deadline and must not touch ca —
// the call is still live inside the batcher (a deputy goroutine carries
// any baton it is later handed, and the reader will still resolve it).
func (c *Client) submitCtx(ctx context.Context, ca *call) error {
	ca.done = make(chan struct{})
	ca.lead = make(chan struct{})
	c.bmu.Lock()
	if c.binflight >= c.window() {
		c.bpending = append(c.bpending, ca)
		c.bmu.Unlock()
		select {
		case <-ca.done:
			return nil
		case <-ca.lead:
			c.leadDrain(ca)
		case <-ctx.Done():
			// Abandoned while parked. The call stays queued — pulling it
			// out would reorder the baton bookkeeping under the reader's
			// feet — so a deputy stands in for the departed caller: if the
			// baton arrives, it drains and flushes exactly as the caller
			// would have (the flush resolves ca and every other parked
			// call; skipping it would strand them all).
			go func() {
				select {
				case <-ca.done:
				case <-ca.lead:
					c.leadDrain(ca)
				}
			}()
			return ctx.Err()
		}
	} else {
		c.binflight++
		c.bmu.Unlock()
		c.leadDrain(ca)
	}
	select {
	case <-ca.done:
		return nil
	case <-ctx.Done():
		// In flight: the reader (or fail) will close done eventually; the
		// caller just stops waiting.
		return ctx.Err()
	}
}

// leadDrain is the leader's half of the baton protocol: drain everything
// parked, fold the leader's own call in, and flush one merged batch. The
// leader's window slot was taken either at submit (immediate leader) or
// inherited through the baton (batchDone popped it from the queue
// without releasing the slot).
func (c *Client) leadDrain(ca *call) {
	c.bmu.Lock()
	group := append(c.bpending, ca)
	c.bpending = nil
	c.bmu.Unlock()
	c.flush(group)
}

// batchDone releases one window slot after an in-flight batch fully
// resolves: leadership passes to a parked call (popped here, so no two
// batons ever reach one call), or the slot frees for the next arrival.
// When the adaptive window has shrunk below the in-flight count, the
// slot is retired instead of handed on — that is the multiplicative
// decrease taking effect.
func (c *Client) batchDone() {
	c.bmu.Lock()
	if len(c.bpending) == 0 || c.binflight > c.window() {
		c.binflight--
		c.bmu.Unlock()
		return
	}
	next := c.bpending[0]
	c.bpending = c.bpending[1:]
	c.bmu.Unlock()
	close(next.lead)
}

// flush merges one drained group into as few wire requests as it can,
// registers the response handlers, and writes every frame in one call.
func (c *Client) flush(group []*call) {
	var (
		buf     []byte
		raws    []*call
		inserts []*call
		byK     = map[int][]*call{}
	)
	for _, ca := range group {
		switch ca.class {
		case classKNN:
			byK[ca.k] = append(byK[ca.k], ca)
		case classInsert:
			inserts = append(inserts, ca)
		default:
			raws = append(raws, ca)
		}
	}

	c.pmu.Lock()
	if err := c.sticky; err != nil {
		c.pmu.Unlock()
		for _, ca := range group {
			ca.err = err
			close(ca.done)
		}
		c.batchDone()
		return
	}
	// The whole batch registers under one pmu hold, before the write:
	// no handler can fire (reader or fail) until registration is
	// complete, so the countdown to batchDone is race-free.
	left := new(atomic.Int64)
	start := time.Now()
	register := func(req *wire.Request, h func(*wire.Response, error)) {
		left.Add(1)
		c.nextID++
		req.ID = c.nextID
		c.pending[req.ID] = func(r *wire.Response, err error) {
			if c.win != nil && err == nil {
				// Feed the window controller before the caller sees the
				// result: a shed is the congestion signal, any other
				// response a fresh RTT sample.
				c.win.onAck(time.Since(start), r.Status == wire.StatusOverloaded)
			}
			h(r, err)
			if left.Add(-1) == 0 {
				c.batchDone()
			}
		}
		buf = wire.AppendRequest(buf, req)
	}
	for _, ca := range raws {
		ca := ca
		register(ca.req, func(r *wire.Response, err error) {
			if err == nil {
				ca.resp = *r
				err = respErr(r)
			}
			ca.err = err
			close(ca.done)
		})
	}
	for k, members := range byK {
		members := members
		q := Points{Dim: c.dim}
		for _, ca := range members {
			q.Data = append(q.Data, ca.q...)
		}
		register(&wire.Request{Op: wire.OpKNN, K: int32(k), Queries: q},
			func(r *wire.Response, err error) {
				if err == nil {
					if err = respErr(r); err == nil && len(r.Neighbors) != len(members) {
						err = &RemoteError{Msg: fmt.Sprintf("KNN batch answered %d of %d queries", len(r.Neighbors), len(members))}
					}
				}
				for i, ca := range members {
					if err == nil {
						ca.ids = r.Neighbors[i]
					}
					ca.err = err
					close(ca.done)
				}
			})
	}
	if len(inserts) > 0 {
		ins := Points{Dim: c.dim}
		rows := make([]int, len(inserts))
		for i, ca := range inserts {
			rows[i] = ca.ins.Len()
			ins.Data = append(ins.Data, ca.ins.Data...)
		}
		register(&wire.Request{Op: wire.OpUpdate, Ins: ins, Del: Points{Dim: c.dim}},
			func(r *wire.Response, err error) {
				if err == nil {
					if err = respErr(r); err == nil && len(r.IDs) != ins.Len() {
						err = &RemoteError{Msg: fmt.Sprintf("insert batch assigned %d ids for %d rows", len(r.IDs), ins.Len())}
					}
				}
				off := 0
				for i, ca := range inserts {
					if err == nil {
						// Ids come back in batch order: each member's
						// share is its contiguous row span.
						ca.ids = r.IDs[off : off+rows[i] : off+rows[i]]
						ca.resp.Epoch = r.Epoch
					}
					off += rows[i]
					ca.err = err
					close(ca.done)
				}
			})
	}
	c.pmu.Unlock()

	if len(buf) == 0 {
		c.batchDone()
		return
	}
	// With the adaptive window, concurrent leaders flush concurrently;
	// wmu keeps their frame runs from interleaving mid-frame.
	c.wmu.Lock()
	if d := c.opts.RequestTimeout; d > 0 {
		// A peer that stops reading while we stall in Write would
		// otherwise hang the call past any deadline: the deadline fails
		// the write, and the stream (unsynchronized at an unknown write
		// offset) is poisoned with it.
		c.conn.SetWriteDeadline(time.Now().Add(d)) //nolint:errcheck // a failed arm surfaces in Write
	}
	_, err := c.conn.Write(buf)
	c.wmu.Unlock()
	if err != nil {
		// fail resolves every registered handler, this group's included
		// — their countdown reaches zero and releases the combiner.
		c.fail(err)
	}
}

// callCtx applies Options.RequestTimeout to a public entry point's
// context. The cancel func must always be called.
func (c *Client) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if d := c.opts.RequestTimeout; d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// retryRead runs one idempotent read, retrying up to
// Options.RetryOverloaded times after sheds. Each wait is the server's
// retry hint with ±50% jitter — synchronized clients retrying in
// lockstep would just reproduce the burst that got them shed.
func (c *Client) retryRead(ctx context.Context, f func() error) error {
	err := f()
	for n := 0; n < c.opts.RetryOverloaded && errors.Is(err, ErrOverloaded); n++ {
		wait := 10 * time.Millisecond
		var oe *OverloadedError
		if errors.As(err, &oe) && oe.RetryAfter > 0 {
			wait = oe.RetryAfter
		}
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait))) //nolint:gosec // jitter, not crypto
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		err = f()
	}
	return err
}

// roundTrip submits one never-merged request and returns its response.
func (c *Client) roundTrip(req *wire.Request) (wire.Response, error) {
	ctx, cancel := c.callCtx(context.Background())
	defer cancel()
	return c.roundTripCtx(ctx, req)
}

// roundTripCtx is roundTrip under an already-prepared context.
func (c *Client) roundTripCtx(ctx context.Context, req *wire.Request) (wire.Response, error) {
	ca := &call{class: classRaw, req: req}
	if err := c.submitCtx(ctx, ca); err != nil {
		return wire.Response{}, err
	}
	return ca.resp, ca.err
}

// KNN returns the ids of the k nearest live points to q, sorted by
// increasing distance. Concurrent KNN calls with the same k coalesce
// into one multi-query request (unless Options.NoBatch).
func (c *Client) KNN(q []float64, k int) ([]int32, error) {
	return c.KNNContext(context.Background(), q, k)
}

// KNNContext is KNN bounded by ctx: at its deadline the call returns
// ctx.Err() without waiting on the wire (the request, if already sent,
// still completes server-side). Options.RequestTimeout, when set, bounds
// the call as well — the tighter deadline wins.
func (c *Client) KNNContext(ctx context.Context, q []float64, k int) ([]int32, error) {
	if len(q) != c.dim {
		return nil, fmt.Errorf("client: query dim %d, engine dim %d", len(q), c.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("client: k = %d: want k ≥ 1", k)
	}
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	var ids []int32
	err := c.retryRead(ctx, func() error {
		var err error
		ids, err = c.knnOnce(ctx, q, k)
		return err
	})
	return ids, err
}

func (c *Client) knnOnce(ctx context.Context, q []float64, k int) ([]int32, error) {
	if c.opts.NoBatch {
		resp, err := c.roundTripCtx(ctx, &wire.Request{Op: wire.OpKNN, K: int32(k), Queries: Points{Data: q, Dim: c.dim}})
		if err != nil {
			return nil, err
		}
		if len(resp.Neighbors) != 1 {
			return nil, &RemoteError{Msg: fmt.Sprintf("KNN answered %d of 1 queries", len(resp.Neighbors))}
		}
		return resp.Neighbors[0], nil
	}
	ca := &call{class: classKNN, k: k, q: q}
	if err := c.submitCtx(ctx, ca); err != nil {
		return nil, err
	}
	return ca.ids, ca.err
}

// KNNBatch answers many queries in one request (one parallel pass on the
// server). It is never merged with other calls — it already is a batch.
func (c *Client) KNNBatch(queries Points, k int) ([][]int32, error) {
	if queries.Len() > 0 && queries.Dim != c.dim {
		return nil, fmt.Errorf("client: query dim %d, engine dim %d", queries.Dim, c.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("client: k = %d: want k ≥ 1", k)
	}
	var resp wire.Response
	err := c.readRoundTrip(&resp, &wire.Request{Op: wire.OpKNN, K: int32(k), Queries: queries})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// RangeSearch returns the ids of all live points inside the closed box.
func (c *Client) RangeSearch(box Box) ([]int32, error) {
	if err := c.checkBox(box); err != nil {
		return nil, err
	}
	var resp wire.Response
	err := c.readRoundTrip(&resp, &wire.Request{Op: wire.OpRange, Box: box})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// RangeCount returns the number of live points inside the closed box.
func (c *Client) RangeCount(box Box) (int, error) {
	if err := c.checkBox(box); err != nil {
		return 0, err
	}
	var resp wire.Response
	err := c.readRoundTrip(&resp, &wire.Request{Op: wire.OpRangeCount, Box: box})
	if err != nil {
		return 0, err
	}
	return int(resp.Count), nil
}

// --- time travel ---------------------------------------------------------
//
// The AsOf variants answer from the server's retained snapshot of an exact
// epoch instead of the live one: the same results forever, however many
// commits happen after it. They fail with ErrEpochNotRetained (errors.Is)
// when the epoch has left the server's retention window — pin it first to
// stop that. As-of calls are never coalesced with live calls (they name a
// different version) but follow the same idempotent-read retry policy.

// KNNAsOf is KNN answered from the snapshot at exactly the given epoch
// (epoch ≥ 1; the live KNN is the epoch-free call).
func (c *Client) KNNAsOf(q []float64, k int, epoch uint64) ([]int32, error) {
	if len(q) != c.dim {
		return nil, fmt.Errorf("client: query dim %d, engine dim %d", len(q), c.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("client: k = %d: want k ≥ 1", k)
	}
	if epoch == 0 {
		return nil, fmt.Errorf("client: as-of epoch 0 (use KNN for live reads)")
	}
	var resp wire.Response
	err := c.readRoundTrip(&resp, &wire.Request{Op: wire.OpKNN, K: int32(k), Queries: Points{Data: q, Dim: c.dim}, AsOf: epoch})
	if err != nil {
		return nil, err
	}
	if len(resp.Neighbors) != 1 {
		return nil, &RemoteError{Msg: fmt.Sprintf("KNN answered %d of 1 queries", len(resp.Neighbors))}
	}
	return resp.Neighbors[0], nil
}

// KNNBatchAsOf is KNNBatch against the snapshot at exactly the given
// epoch.
func (c *Client) KNNBatchAsOf(queries Points, k int, epoch uint64) ([][]int32, error) {
	if queries.Len() > 0 && queries.Dim != c.dim {
		return nil, fmt.Errorf("client: query dim %d, engine dim %d", queries.Dim, c.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("client: k = %d: want k ≥ 1", k)
	}
	if epoch == 0 {
		return nil, fmt.Errorf("client: as-of epoch 0 (use KNNBatch for live reads)")
	}
	var resp wire.Response
	err := c.readRoundTrip(&resp, &wire.Request{Op: wire.OpKNN, K: int32(k), Queries: queries, AsOf: epoch})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// RangeSearchAsOf is RangeSearch against the snapshot at exactly the given
// epoch.
func (c *Client) RangeSearchAsOf(box Box, epoch uint64) ([]int32, error) {
	if err := c.checkBox(box); err != nil {
		return nil, err
	}
	if epoch == 0 {
		return nil, fmt.Errorf("client: as-of epoch 0 (use RangeSearch for live reads)")
	}
	var resp wire.Response
	err := c.readRoundTrip(&resp, &wire.Request{Op: wire.OpRange, Box: box, AsOf: epoch})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// RangeCountAsOf is RangeCount against the snapshot at exactly the given
// epoch.
func (c *Client) RangeCountAsOf(box Box, epoch uint64) (int, error) {
	if err := c.checkBox(box); err != nil {
		return 0, err
	}
	if epoch == 0 {
		return 0, fmt.Errorf("client: as-of epoch 0 (use RangeCount for live reads)")
	}
	var resp wire.Response
	err := c.readRoundTrip(&resp, &wire.Request{Op: wire.OpRangeCount, Box: box, AsOf: epoch})
	if err != nil {
		return 0, err
	}
	return int(resp.Count), nil
}

// Pin pins the server's latest committed epoch and returns it: the epoch
// stays answerable through the AsOf calls — immune to the server's
// retention GC — until a matching Unpin, or until THIS CONNECTION closes
// (server pins are connection-scoped and do not survive a server restart;
// see the package documentation). Pin is not auto-retried: a pin the
// client cannot confirm must not be held server-side.
func (c *Client) Pin() (uint64, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpPin})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// PinEpoch pins a specific epoch still inside the server's retention
// window (or already pinned), failing with ErrEpochNotRetained otherwise.
func (c *Client) PinEpoch(epoch uint64) (uint64, error) {
	if epoch == 0 {
		return 0, fmt.Errorf("client: pin epoch 0 (use Pin for the latest commit)")
	}
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpPin, Epoch: epoch})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// Unpin releases one of this connection's pins of epoch. Unpinning an
// epoch the connection does not hold is a RemoteError — pins belong to
// connections, and one client cannot release another's.
func (c *Client) Unpin(epoch uint64) error {
	_, err := c.roundTrip(&wire.Request{Op: wire.OpUnpin, Epoch: epoch})
	return err
}

// readRoundTrip is roundTrip plus the idempotent-read retry policy. The
// request is re-submitted verbatim on each attempt (fresh wire id).
func (c *Client) readRoundTrip(out *wire.Response, req *wire.Request) error {
	ctx, cancel := c.callCtx(context.Background())
	defer cancel()
	return c.retryRead(ctx, func() error {
		resp, err := c.roundTripCtx(ctx, req)
		*out = resp
		return err
	})
}

func (c *Client) checkBox(box Box) error {
	if len(box.Min) != c.dim || len(box.Max) != c.dim {
		return fmt.Errorf("client: box dim %d×%d, engine dim %d", len(box.Min), len(box.Max), c.dim)
	}
	return nil
}

// Update commits one insert/delete batch pair, mirroring the embedded
// engine's Update: the result's Err carries any failure (including the
// typed ErrEngineClosed and ErrConnClosed). A pure insert may coalesce
// with concurrent pure inserts; an update with deletions always travels
// alone, because the wire reports one aggregate deletion count per
// request and merged deletes could not be attributed back to callers.
func (c *Client) Update(insert, del Points) UpdateResult {
	return c.UpdateContext(context.Background(), insert, del)
}

// UpdateContext is Update bounded by ctx: at its deadline the result
// carries ctx.Err() and the caller must treat the update's fate as
// unknown — the batch may still commit server-side (an abandoned call is
// not a cancelled one; the wire has no cancel). Options.RequestTimeout,
// when set, bounds the call as well. Updates are never auto-retried.
func (c *Client) UpdateContext(ctx context.Context, insert, del Points) UpdateResult {
	if insert.Len() > 0 && insert.Dim != c.dim {
		return UpdateResult{Err: fmt.Errorf("client: insert dim %d, engine dim %d", insert.Dim, c.dim)}
	}
	if del.Len() > 0 && del.Dim != c.dim {
		return UpdateResult{Err: fmt.Errorf("client: delete dim %d, engine dim %d", del.Dim, c.dim)}
	}
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	if del.Len() == 0 && insert.Len() > 0 && !c.opts.NoBatch {
		ca := &call{class: classInsert, ins: insert}
		if err := c.submitCtx(ctx, ca); err != nil {
			return UpdateResult{Err: err}
		}
		if ca.err != nil {
			return UpdateResult{Err: ca.err}
		}
		return UpdateResult{IDs: ca.ids, Epoch: ca.resp.Epoch}
	}
	resp, err := c.roundTripCtx(ctx, &wire.Request{
		Op:  wire.OpUpdate,
		Ins: Points{Data: insert.Data, Dim: c.dim},
		Del: Points{Data: del.Data, Dim: c.dim},
	})
	if err != nil {
		return UpdateResult{Err: err}
	}
	return UpdateResult{IDs: resp.IDs, Deleted: int(resp.Deleted), Epoch: resp.Epoch}
}

// Insert commits a batch of new points and returns their assigned ids.
func (c *Client) Insert(batch Points) UpdateResult {
	return c.Update(batch, Points{Dim: c.dim})
}

// Delete commits the removal of every live point whose coordinates match
// a batch point.
func (c *Client) Delete(batch Points) UpdateResult {
	return c.Update(Points{Dim: c.dim}, batch)
}

// Epoch returns the server engine's current snapshot epoch.
func (c *Client) Epoch() (uint64, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpEpoch})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// Checkpoint asks the server to write a checkpoint and returns the
// highest durable epoch once it completes.
func (c *Client) Checkpoint() (uint64, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpCheckpoint})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// Stats returns the server's counters (engine serving stats plus
// connection/request totals) as a name→value map.
func (c *Client) Stats() (map[string]uint64, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	m := make(map[string]uint64, len(resp.Stats))
	for _, s := range resp.Stats {
		m[s.Name] = s.Value
	}
	return m, nil
}
