package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"pargeo/internal/engine"
	"pargeo/internal/geom"
	"pargeo/internal/wire"
)

// Points and Box are the coordinate types shared with the pargeo facade
// (pargeo.Points / pargeo.Box are the same aliases).
type (
	Points = geom.Points
	Box    = geom.Box
)

// UpdateResult is the engine's update acknowledgement, identical to the
// embedded engine's — code written against pargeo.Engine.Update reads a
// remote result the same way.
type UpdateResult = engine.UpdateResult

// ErrEngineClosed reports that the server's engine rejected the call
// because it is shut down or shutting down. It is the same value as the
// embedded engine's ErrClosed, so one errors.Is target covers both
// embedded and remote use.
var ErrEngineClosed = engine.ErrClosed

// ErrConnClosed reports that the client's connection is gone: Close was
// called, the stream broke, or the server dropped it. The sticky stream
// error (when there is one) is wrapped alongside.
var ErrConnClosed = errors.New("client: connection closed")

// RemoteError is a server-side failure that is not the closed state:
// the message is the remote error's text.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "pargeo server: " + e.Msg }

// Options configure a Client.
type Options struct {
	// NoBatch disables call coalescing: every call becomes its own wire
	// request. The connection is still shared and pipelined. Exists for
	// measurement (the serve benchmark's unbatched arm) and debugging.
	NoBatch bool
}

// batch classes for the combiner.
const (
	classRaw    = iota // pre-built request, never merged
	classKNN           // solo k-NN query: mergeable by k
	classInsert        // insert-only update: mergeable
)

// call is one in-flight API call parked on the combiner.
type call struct {
	class int
	k     int       // classKNN
	q     []float64 // classKNN
	ins   Points    // classInsert
	req   *wire.Request

	done chan struct{}
	lead chan struct{} // combiner baton

	// Results, valid after done closes.
	resp wire.Response
	ids  []int32 // classKNN / classInsert member share
	err  error
}

// Client is one connection to a pargeo-serve daemon. All methods are
// safe for concurrent use by any number of goroutines; see the package
// documentation for the batching semantics.
type Client struct {
	conn   net.Conn
	opts   Options
	dim    int
	shards int

	// Write side: the flat-combining batcher (doc.go).
	bmu      sync.Mutex
	bpending []*call
	bactive  bool

	// Read side: in-flight requests by id, completed by the reader
	// goroutine. A handler distributes one response to its calls.
	pmu     sync.Mutex
	pending map[uint64]func(*wire.Response, error)
	nextID  uint64
	sticky  error // set once the stream is unusable; guarded by pmu

	readerDone chan struct{}
}

// Dial connects to a pargeo-serve daemon, performs the Hello handshake
// (learning the engine's dimension and shard count), and starts the
// response reader.
func Dial(addr string) (*Client, error) { return DialWith(addr, Options{}) }

// DialWith is Dial with explicit options.
func DialWith(addr string, opts Options) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		opts:       opts,
		pending:    map[uint64]func(*wire.Response, error){},
		readerDone: make(chan struct{}),
	}
	// Handshake runs synchronously, before the reader exists: id 0 is
	// reserved for it and the first frame back must answer it.
	hello := wire.AppendRequest(nil, &wire.Request{Op: wire.OpHello})
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, err
	}
	buf, err := wire.ReadFrame(conn, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	// The Hello response carries no coordinates; dim 1 satisfies the
	// decoder before the real dimension is known.
	resp, _, err := wire.DecodeResponse(buf, 1)
	if err != nil || resp.Op != wire.OpHello || resp.ID != 0 {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: bad response (%v)", err)
	}
	if err := respErr(&resp); err != nil {
		conn.Close()
		return nil, err
	}
	if resp.Dim < 1 {
		conn.Close()
		return nil, fmt.Errorf("client: handshake: server dim %d", resp.Dim)
	}
	c.dim = int(resp.Dim)
	c.shards = int(resp.Shards)
	go c.readLoop()
	return c, nil
}

// Dim returns the server engine's point dimensionality.
func (c *Client) Dim() int { return c.dim }

// Shards returns the server engine's shard count.
func (c *Client) Shards() int { return c.shards }

// Close tears the connection down. In-flight calls fail with
// ErrConnClosed. Closing an already-closed client is a no-op.
func (c *Client) Close() error {
	c.fail(ErrConnClosed)
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// respErr maps a response status to the client's typed errors.
func respErr(r *wire.Response) error {
	switch r.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusClosed:
		return ErrEngineClosed
	default:
		return &RemoteError{Msg: r.ErrMsg}
	}
}

// fail poisons the client: future and in-flight calls all resolve with
// err (wrapped under ErrConnClosed when it isn't the sticky value
// already). First caller wins; later errors are ignored.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.sticky != nil {
		c.pmu.Unlock()
		return
	}
	if err != ErrConnClosed {
		err = fmt.Errorf("%w: %w", ErrConnClosed, err)
	}
	c.sticky = err
	handlers := c.pending
	c.pending = map[uint64]func(*wire.Response, error){}
	c.pmu.Unlock()
	for _, h := range handlers {
		h(nil, err)
	}
}

// readLoop is the reader goroutine: one response frame at a time,
// dispatched to its registered handler by request id.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	var buf []byte
	for {
		var err error
		buf, err = wire.ReadFrame(c.conn, buf)
		if err != nil {
			c.fail(err)
			return
		}
		resp, _, err := wire.DecodeResponse(buf, c.dim)
		if err != nil {
			c.fail(err)
			c.conn.Close()
			return
		}
		c.pmu.Lock()
		h := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.pmu.Unlock()
		if h != nil {
			h(&resp, nil)
		}
	}
}

// submit parks one call on the combiner and waits for its result. The
// first arrival while no batch is in flight becomes the flush leader: it
// drains the queue, merges what merges, and writes one buffer — the same
// leader/baton protocol as the engine's committers, applied to the
// connection's write side. Unlike the engine's (whose combining window
// is the synchronous commit), the baton here is held until the flushed
// batch's LAST response arrives (batchDone, called from the reader):
// the network round trip is the combining window, so calls arriving
// while a batch is in flight accumulate into the next one instead of
// racing out as singletons.
func (c *Client) submit(ca *call) {
	ca.done = make(chan struct{})
	ca.lead = make(chan struct{})
	c.bmu.Lock()
	c.bpending = append(c.bpending, ca)
	if c.bactive {
		c.bmu.Unlock()
		select {
		case <-ca.done:
			return
		case <-ca.lead:
		}
	} else {
		c.bactive = true
		c.bmu.Unlock()
	}
	c.bmu.Lock()
	group := c.bpending
	c.bpending = nil
	c.bmu.Unlock()
	c.flush(group)
	<-ca.done
}

// batchDone releases the combiner after an in-flight batch fully
// resolves: leadership passes to a parked call (which drains everything
// parked by now), or the gate opens for the next arrival.
func (c *Client) batchDone() {
	c.bmu.Lock()
	if len(c.bpending) == 0 {
		c.bactive = false
		c.bmu.Unlock()
		return
	}
	next := c.bpending[0]
	c.bmu.Unlock()
	close(next.lead)
}

// flush merges one drained group into as few wire requests as it can,
// registers the response handlers, and writes every frame in one call.
func (c *Client) flush(group []*call) {
	var (
		buf     []byte
		raws    []*call
		inserts []*call
		byK     = map[int][]*call{}
	)
	for _, ca := range group {
		switch ca.class {
		case classKNN:
			byK[ca.k] = append(byK[ca.k], ca)
		case classInsert:
			inserts = append(inserts, ca)
		default:
			raws = append(raws, ca)
		}
	}

	c.pmu.Lock()
	if err := c.sticky; err != nil {
		c.pmu.Unlock()
		for _, ca := range group {
			ca.err = err
			close(ca.done)
		}
		c.batchDone()
		return
	}
	// The whole batch registers under one pmu hold, before the write:
	// no handler can fire (reader or fail) until registration is
	// complete, so the countdown to batchDone is race-free.
	left := new(atomic.Int64)
	register := func(req *wire.Request, h func(*wire.Response, error)) {
		left.Add(1)
		c.nextID++
		req.ID = c.nextID
		c.pending[req.ID] = func(r *wire.Response, err error) {
			h(r, err)
			if left.Add(-1) == 0 {
				c.batchDone()
			}
		}
		buf = wire.AppendRequest(buf, req)
	}
	for _, ca := range raws {
		ca := ca
		register(ca.req, func(r *wire.Response, err error) {
			if err == nil {
				ca.resp = *r
				err = respErr(r)
			}
			ca.err = err
			close(ca.done)
		})
	}
	for k, members := range byK {
		members := members
		q := Points{Dim: c.dim}
		for _, ca := range members {
			q.Data = append(q.Data, ca.q...)
		}
		register(&wire.Request{Op: wire.OpKNN, K: int32(k), Queries: q},
			func(r *wire.Response, err error) {
				if err == nil {
					if err = respErr(r); err == nil && len(r.Neighbors) != len(members) {
						err = &RemoteError{Msg: fmt.Sprintf("KNN batch answered %d of %d queries", len(r.Neighbors), len(members))}
					}
				}
				for i, ca := range members {
					if err == nil {
						ca.ids = r.Neighbors[i]
					}
					ca.err = err
					close(ca.done)
				}
			})
	}
	if len(inserts) > 0 {
		ins := Points{Dim: c.dim}
		rows := make([]int, len(inserts))
		for i, ca := range inserts {
			rows[i] = ca.ins.Len()
			ins.Data = append(ins.Data, ca.ins.Data...)
		}
		register(&wire.Request{Op: wire.OpUpdate, Ins: ins, Del: Points{Dim: c.dim}},
			func(r *wire.Response, err error) {
				if err == nil {
					if err = respErr(r); err == nil && len(r.IDs) != ins.Len() {
						err = &RemoteError{Msg: fmt.Sprintf("insert batch assigned %d ids for %d rows", len(r.IDs), ins.Len())}
					}
				}
				off := 0
				for i, ca := range inserts {
					if err == nil {
						// Ids come back in batch order: each member's
						// share is its contiguous row span.
						ca.ids = r.IDs[off : off+rows[i] : off+rows[i]]
						ca.resp.Epoch = r.Epoch
					}
					off += rows[i]
					ca.err = err
					close(ca.done)
				}
			})
	}
	c.pmu.Unlock()

	if len(buf) == 0 {
		c.batchDone()
		return
	}
	if _, err := c.conn.Write(buf); err != nil {
		// fail resolves every registered handler, this group's included
		// — their countdown reaches zero and releases the combiner.
		c.fail(err)
	}
}

// roundTrip submits one never-merged request and returns its response.
func (c *Client) roundTrip(req *wire.Request) (wire.Response, error) {
	ca := &call{class: classRaw, req: req}
	c.submit(ca)
	return ca.resp, ca.err
}

// KNN returns the ids of the k nearest live points to q, sorted by
// increasing distance. Concurrent KNN calls with the same k coalesce
// into one multi-query request (unless Options.NoBatch).
func (c *Client) KNN(q []float64, k int) ([]int32, error) {
	if len(q) != c.dim {
		return nil, fmt.Errorf("client: query dim %d, engine dim %d", len(q), c.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("client: k = %d: want k ≥ 1", k)
	}
	if c.opts.NoBatch {
		resp, err := c.roundTrip(&wire.Request{Op: wire.OpKNN, K: int32(k), Queries: Points{Data: q, Dim: c.dim}})
		if err != nil {
			return nil, err
		}
		if len(resp.Neighbors) != 1 {
			return nil, &RemoteError{Msg: fmt.Sprintf("KNN answered %d of 1 queries", len(resp.Neighbors))}
		}
		return resp.Neighbors[0], nil
	}
	ca := &call{class: classKNN, k: k, q: q}
	c.submit(ca)
	return ca.ids, ca.err
}

// KNNBatch answers many queries in one request (one parallel pass on the
// server). It is never merged with other calls — it already is a batch.
func (c *Client) KNNBatch(queries Points, k int) ([][]int32, error) {
	if queries.Len() > 0 && queries.Dim != c.dim {
		return nil, fmt.Errorf("client: query dim %d, engine dim %d", queries.Dim, c.dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("client: k = %d: want k ≥ 1", k)
	}
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpKNN, K: int32(k), Queries: queries})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// RangeSearch returns the ids of all live points inside the closed box.
func (c *Client) RangeSearch(box Box) ([]int32, error) {
	if err := c.checkBox(box); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpRange, Box: box})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// RangeCount returns the number of live points inside the closed box.
func (c *Client) RangeCount(box Box) (int, error) {
	if err := c.checkBox(box); err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpRangeCount, Box: box})
	if err != nil {
		return 0, err
	}
	return int(resp.Count), nil
}

func (c *Client) checkBox(box Box) error {
	if len(box.Min) != c.dim || len(box.Max) != c.dim {
		return fmt.Errorf("client: box dim %d×%d, engine dim %d", len(box.Min), len(box.Max), c.dim)
	}
	return nil
}

// Update commits one insert/delete batch pair, mirroring the embedded
// engine's Update: the result's Err carries any failure (including the
// typed ErrEngineClosed and ErrConnClosed). A pure insert may coalesce
// with concurrent pure inserts; an update with deletions always travels
// alone, because the wire reports one aggregate deletion count per
// request and merged deletes could not be attributed back to callers.
func (c *Client) Update(insert, del Points) UpdateResult {
	if insert.Len() > 0 && insert.Dim != c.dim {
		return UpdateResult{Err: fmt.Errorf("client: insert dim %d, engine dim %d", insert.Dim, c.dim)}
	}
	if del.Len() > 0 && del.Dim != c.dim {
		return UpdateResult{Err: fmt.Errorf("client: delete dim %d, engine dim %d", del.Dim, c.dim)}
	}
	if del.Len() == 0 && insert.Len() > 0 && !c.opts.NoBatch {
		ca := &call{class: classInsert, ins: insert}
		c.submit(ca)
		if ca.err != nil {
			return UpdateResult{Err: ca.err}
		}
		return UpdateResult{IDs: ca.ids, Epoch: ca.resp.Epoch}
	}
	resp, err := c.roundTrip(&wire.Request{
		Op:  wire.OpUpdate,
		Ins: Points{Data: insert.Data, Dim: c.dim},
		Del: Points{Data: del.Data, Dim: c.dim},
	})
	if err != nil {
		return UpdateResult{Err: err}
	}
	return UpdateResult{IDs: resp.IDs, Deleted: int(resp.Deleted), Epoch: resp.Epoch}
}

// Insert commits a batch of new points and returns their assigned ids.
func (c *Client) Insert(batch Points) UpdateResult {
	return c.Update(batch, Points{Dim: c.dim})
}

// Delete commits the removal of every live point whose coordinates match
// a batch point.
func (c *Client) Delete(batch Points) UpdateResult {
	return c.Update(Points{Dim: c.dim}, batch)
}

// Epoch returns the server engine's current snapshot epoch.
func (c *Client) Epoch() (uint64, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpEpoch})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// Checkpoint asks the server to write a checkpoint and returns the
// highest durable epoch once it completes.
func (c *Client) Checkpoint() (uint64, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpCheckpoint})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// Stats returns the server's counters (engine serving stats plus
// connection/request totals) as a name→value map.
func (c *Client) Stats() (map[string]uint64, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	m := make(map[string]uint64, len(resp.Stats))
	for _, s := range resp.Stats {
		m[s.Name] = s.Value
	}
	return m, nil
}
