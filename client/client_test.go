package client_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pargeo/client"
	"pargeo/internal/wire"
)

// fakeServer speaks the wire protocol with a scriptable handler, so the
// client's failure-path behavior can be pinned without a real engine:
// sheds, stalls, and mid-batch connection drops on demand. Hello is
// answered automatically (dim 2, one shard).
type fakeServer struct {
	t      *testing.T
	ln     net.Listener
	handle func(req *wire.Request, send func(*wire.Response))

	mu    sync.Mutex
	conns []net.Conn
}

func newFakeServer(t *testing.T, handle func(req *wire.Request, send func(*wire.Response))) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{t: t, ln: ln, handle: handle}
	go fs.serve()
	t.Cleanup(fs.close)
	return fs
}

func (fs *fakeServer) addr() string { return fs.ln.Addr().String() }

func (fs *fakeServer) close() {
	fs.ln.Close()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, c := range fs.conns {
		c.Close()
	}
}

// dropConns severs every accepted connection mid-stream.
func (fs *fakeServer) dropConns() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, c := range fs.conns {
		c.Close()
	}
	fs.conns = nil
}

func (fs *fakeServer) serve() {
	for {
		conn, err := fs.ln.Accept()
		if err != nil {
			return
		}
		fs.mu.Lock()
		fs.conns = append(fs.conns, conn)
		fs.mu.Unlock()
		go func() {
			var wmu sync.Mutex
			send := func(resp *wire.Response) {
				wmu.Lock()
				defer wmu.Unlock()
				conn.Write(wire.AppendResponse(nil, resp)) //nolint:errcheck // test conn may be gone
			}
			var buf []byte
			for {
				var err error
				buf, err = wire.ReadFrame(conn, buf)
				if err != nil {
					return
				}
				req, _, err := wire.DecodeRequest(buf, 2)
				if err != nil {
					fs.t.Errorf("fake server: corrupt request: %v", err)
					return
				}
				if req.Op == wire.OpHello {
					send(&wire.Response{Op: wire.OpHello, ID: req.ID, Dim: 2, Shards: 1})
					continue
				}
				// Concurrent dispatch, like the real server: the read
				// loop must not serialize handlers, or pipelined batches
				// could never overlap at the server.
				r := req
				go fs.handle(&r, send)
			}
		}()
	}
}

// echoKNN answers a (possibly merged) KNN request with one id per query.
func echoKNN(req *wire.Request, send func(*wire.Response)) {
	nb := make([][]int32, req.Queries.Len())
	for i := range nb {
		nb[i] = []int32{int32(i)}
	}
	send(&wire.Response{Op: req.Op, ID: req.ID, Neighbors: nb})
}

// TestOverloadedTyped: a shed frame surfaces as *OverloadedError, is
// matched by errors.Is(…, ErrOverloaded), and carries the server's hint.
func TestOverloadedTyped(t *testing.T) {
	fs := newFakeServer(t, func(req *wire.Request, send func(*wire.Response)) {
		send(&wire.Response{Op: req.Op, ID: req.ID, Status: wire.StatusOverloaded,
			RetryAfterMillis: 25, ErrMsg: "server: overloaded (reads)"})
	})
	c, err := client.Dial(fs.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.KNN([]float64{1, 2}, 3)
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("shed KNN: %v, want ErrOverloaded", err)
	}
	var oe *client.OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter != 25*time.Millisecond {
		t.Fatalf("shed KNN: %v, want *OverloadedError with 25ms hint", err)
	}
	// A shed update is typed the same way but NEVER retried.
	if res := c.Insert(client.Points{Data: []float64{1, 2}, Dim: 2}); !errors.Is(res.Err, client.ErrOverloaded) {
		t.Fatalf("shed insert: %v, want ErrOverloaded", res.Err)
	}
}

// TestRetryOverloaded: with the retry option, an idempotent read rides
// out sheds and returns the eventual answer; attempts are bounded.
func TestRetryOverloaded(t *testing.T) {
	var reads, writes atomic.Int64
	fs := newFakeServer(t, func(req *wire.Request, send func(*wire.Response)) {
		if req.Op == wire.OpUpdate {
			writes.Add(1)
			send(&wire.Response{Op: req.Op, ID: req.ID, Status: wire.StatusOverloaded, RetryAfterMillis: 1})
			return
		}
		if reads.Add(1) <= 2 {
			send(&wire.Response{Op: req.Op, ID: req.ID, Status: wire.StatusOverloaded, RetryAfterMillis: 1})
			return
		}
		echoKNN(req, send)
	})
	c, err := client.DialWith(fs.addr(), client.Options{RetryOverloaded: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids, err := c.KNN([]float64{1, 2}, 1)
	if err != nil || len(ids) != 1 {
		t.Fatalf("retried KNN: ids=%v err=%v", ids, err)
	}
	if got := reads.Load(); got != 3 {
		t.Fatalf("server saw %d read attempts, want 3 (2 sheds + 1 success)", got)
	}
	// Writes never auto-retry, even with the option set.
	if res := c.Insert(client.Points{Data: []float64{3, 4}, Dim: 2}); !errors.Is(res.Err, client.ErrOverloaded) {
		t.Fatalf("shed insert with retry option: %v, want ErrOverloaded", res.Err)
	}
	if got := writes.Load(); got != 1 {
		t.Fatalf("server saw %d write attempts, want exactly 1", got)
	}
}

// TestRequestTimeout: a server that swallows requests must not hang the
// client — Options.RequestTimeout bounds the wait and surfaces
// context.DeadlineExceeded.
func TestRequestTimeout(t *testing.T) {
	fs := newFakeServer(t, func(req *wire.Request, send func(*wire.Response)) {
		// Swallow everything: the response never comes.
	})
	c, err := client.DialWith(fs.addr(), client.Options{RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.KNN([]float64{1, 2}, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled KNN: %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("stalled KNN took %v to time out", el)
	}
}

// TestContextDeadlineWhileParked: the deputy regression. With the
// single-batch window, a call parked behind a stalled batch abandons at
// its deadline — but if the baton is later handed to the abandoned call,
// someone must still drain the queue, or every other parked caller
// hangs forever.
func TestContextDeadlineWhileParked(t *testing.T) {
	type held struct {
		req  *wire.Request
		send func(*wire.Response)
	}
	first := make(chan held, 1)
	var n atomic.Int64
	fs := newFakeServer(t, func(req *wire.Request, send func(*wire.Response)) {
		if n.Add(1) == 1 {
			first <- held{req, send} // hold the first batch's response
			return
		}
		echoKNN(req, send)
	})
	c, err := client.Dial(fs.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// X: in flight, response held by the server.
	xDone := make(chan error, 1)
	go func() {
		_, err := c.KNN([]float64{0, 0}, 1)
		xDone <- err
	}()
	h := <-first // X's request has arrived; its batch is now stalled in flight

	// A parks behind X with a deadline it will miss; B parks with none.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	aDone := make(chan error, 1)
	go func() {
		_, err := c.KNNContext(ctx, []float64{1, 1}, 1)
		aDone <- err
	}()
	bDone := make(chan error, 1)
	go func() {
		_, err := c.KNN([]float64{2, 2}, 1)
		bDone <- err
	}()

	// A abandons while parked.
	select {
	case err := <-aDone:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("parked call at deadline: %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked call ignored its deadline")
	}
	select {
	case err := <-bDone:
		t.Fatalf("B resolved while the first batch still held: %v", err)
	default:
	}

	// Release X. The baton may go to the ABANDONED call A — its deputy
	// must lead the drain so B's call still reaches the server.
	echoKNN(h.req, h.send)
	if err := <-xDone; err != nil {
		t.Fatalf("first call: %v", err)
	}
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("call parked behind an abandoned baton holder: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call parked behind an abandoned baton holder never resolved")
	}
}

// TestBatonReleaseOnBrokenBatch: the stream breaks while a batch is in
// flight and others are parked behind it. Every caller — in flight and
// parked — must resolve promptly with the typed connection error; none
// may wait on a baton that no response will ever release.
func TestBatonReleaseOnBrokenBatch(t *testing.T) {
	got := make(chan struct{}, 16)
	fs := newFakeServer(t, func(req *wire.Request, send func(*wire.Response)) {
		got <- struct{}{} // swallow: these responses never come
	})
	c, err := client.Dial(fs.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const callers = 6
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		i := i
		go func() {
			_, err := c.KNN([]float64{float64(i), 0}, 1)
			errs <- err
		}()
	}
	<-got // the leader's batch reached the server; the rest are parked
	fs.dropConns()
	for i := 0; i < callers; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, client.ErrConnClosed) {
				t.Fatalf("caller resolved with %v, want ErrConnClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("after the break, %d of %d callers still parked on the dead baton", callers-i, callers)
		}
	}
}

// TestAdaptiveWindowPipelines: with MaxWindow enabled and the server
// holding responses, the client must put MORE than one batch in flight
// once the window grows — the single-batch invariant is opt-out by
// design, and this pins that the opt-in actually pipelines.
func TestAdaptiveWindowPipelines(t *testing.T) {
	var inflight, peak atomic.Int64
	fs := newFakeServer(t, func(req *wire.Request, send func(*wire.Response)) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond) // hold the slot so batches overlap
		echoKNN(req, send)
		inflight.Add(-1)
	})
	c, err := client.DialWith(fs.addr(), client.Options{MaxWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Closed-loop callers keep the pipe busy; healthy acks grow the
	// window past 1, letting batches overlap at the server.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := c.KNN([]float64{1, 2}, 1); err != nil {
					t.Errorf("windowed KNN: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak concurrent batches %d with MaxWindow 8, want ≥ 2", p)
	}
}
