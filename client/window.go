package client

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// CUBIC constants (RFC 8312): C scales the cubic growth, beta is the
// multiplicative decrease. The RTT gains are RFC 6298's.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
	// rttInflation: a sample this many times the observed floor means the
	// server's queues are absorbing the difference — treat it as
	// congestion even though nothing was shed yet.
	rttInflation = 2.0
)

// windowController adapts the client's in-flight batch window from the
// two overload signals a pargeo-serve connection exposes: explicit
// StatusOverloaded sheds and RTT inflation over the connection's
// observed floor. Growth follows the CUBIC curve — concave approach to
// the window that last congested, then convex probing past it — and
// each congestion signal applies one multiplicative decrease per
// smoothed RTT (every response in a shed burst reports the same event;
// halving once per burst, not once per response, is what keeps the
// window from collapsing to the floor on every incident).
//
// The zero value is not usable; newWindowController sets the clock, the
// cap, and the starting window of 1 (today's single-in-flight-batch
// behavior, grown only as acks prove capacity).
type windowController struct {
	mu  sync.Mutex
	now func() time.Time // injectable for tests
	max int

	cwnd  float64   // continuous window; cached rounds it for readers
	wMax  float64   // window at the last decrease (the CUBIC plateau)
	k     float64   // seconds from epoch back to wMax on the cubic curve
	epoch time.Time // start of the current growth epoch; zero = unset

	srtt, rttvar time.Duration // RFC 6298 smoothed RTT and variance
	minRTT       time.Duration // observed floor, the inflation baseline
	lastDecrease time.Time

	cached atomic.Int64
}

func newWindowController(max int, now func() time.Time) *windowController {
	w := &windowController{now: now, max: max, cwnd: 1}
	w.cached.Store(1)
	return w
}

// current returns the integer window without taking the lock.
func (w *windowController) current() int { return int(w.cached.Load()) }

// onAck folds one completed request into the estimator and the window.
// rtt ≤ 0 means the sample is unusable (clock step); congested marks an
// explicit shed.
func (w *windowController) onAck(rtt time.Duration, congested bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.now()
	if rtt > 0 {
		if w.minRTT == 0 || rtt < w.minRTT {
			w.minRTT = rtt
		}
		if w.srtt == 0 {
			w.srtt = rtt
			w.rttvar = rtt / 2
		} else {
			d := w.srtt - rtt
			if d < 0 {
				d = -d
			}
			w.rttvar += (d - w.rttvar) / 4
			w.srtt += (rtt - w.srtt) / 8
		}
		if !congested && float64(rtt) > rttInflation*float64(w.minRTT) {
			congested = true
		}
	}
	if congested {
		if w.lastDecrease.IsZero() || now.Sub(w.lastDecrease) >= w.srtt {
			w.lastDecrease = now
			w.wMax = w.cwnd
			w.cwnd = math.Max(1, w.cwnd*cubicBeta)
			w.k = math.Cbrt(w.wMax * (1 - cubicBeta) / cubicC)
			w.epoch = now
		}
	} else {
		if w.epoch.IsZero() {
			// First ack (or first after a reset): probe from here.
			w.epoch = now
			w.wMax = w.cwnd
			w.k = 0
		}
		t := now.Sub(w.epoch).Seconds()
		target := cubicC*math.Pow(t-w.k, 3) + w.wMax
		// TCP-friendly region (RFC 8312 §4.2): near the plateau the cubic
		// curve is almost flat — from a small wMax it would take seconds
		// to grow at all — so the window never drops below what a linear
		// AIMD flow would have earned in the same time.
		if w.srtt > 0 {
			est := w.wMax*cubicBeta + 3*(1-cubicBeta)/(1+cubicBeta)*(t/w.srtt.Seconds())
			target = math.Max(target, est)
		}
		if target > w.cwnd {
			// Approach the target one ack at a time — at most +1 per ack,
			// CUBIC's pacing — rather than jumping: a burst of late acks
			// must not teleport the window to wherever the curve has
			// climbed meanwhile.
			w.cwnd += math.Min((target-w.cwnd)/w.cwnd, 1)
		}
		if w.cwnd > float64(w.max) {
			w.cwnd = float64(w.max)
		}
	}
	w.cached.Store(int64(w.cwnd))
}
